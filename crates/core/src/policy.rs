//! Agent movement policies.
//!
//! Mapping (paper §II.B): *random* agents wander blindly; *conscientious*
//! agents prefer the neighbour they have never visited or visited least
//! recently, judged by **first-hand** experience only;
//! *super-conscientious* agents judge by first- **and** second-hand
//! (peer-learned) visit information.
//!
//! Routing (paper §III.B): *random* and *oldest-node* (the conscientious
//! rule over a bounded [`crate::history::VisitMemory`]).
//!
//! Every policy composes with stigmergy the same way: footprint-marked
//! exits are removed from the candidate set first, unless that would
//! empty it — see [`choose_move`].

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use agentnet_engine::Step;
use agentnet_graph::NodeId;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mapping-agent movement algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Move to a uniformly random out-neighbour.
    Random,
    /// Prefer never/least-recently visited, first-hand knowledge only.
    Conscientious,
    /// Prefer never/least-recently visited using merged first- and
    /// second-hand knowledge.
    SuperConscientious,
}

impl fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MappingPolicy::Random => "random",
            MappingPolicy::Conscientious => "conscientious",
            MappingPolicy::SuperConscientious => "super-conscientious",
        };
        f.write_str(s)
    }
}

/// Routing-agent movement algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Move to a uniformly random reachable neighbour.
    Random,
    /// Prefer the neighbour last visited longest ago (or never / not
    /// remembered), per the agent's bounded visit memory.
    OldestNode,
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoutingPolicy::Random => "random",
            RoutingPolicy::OldestNode => "oldest-node",
        };
        f.write_str(s)
    }
}

/// How equally-preferred candidates are resolved.
///
/// The default, [`TieBreak::Hashed`], is a *knowledge-conditioned*
/// deterministic rule: the pick is a hash of the agent's own knowledge
/// (and the tied candidates). Two agents whose knowledge became
/// identical after a meeting therefore make **identical** choices — the
/// paper's herding/chasing mechanism — while independently-informed
/// agents are unbiased, as if random.
///
/// [`TieBreak::Random`] is the paper's proposed fix ("add randomness to
/// the decision"): it dissolves the herding. [`TieBreak::LowestId`] is a
/// globally-biased determinism that makes *all* equally-informed agents
/// drift towards low node ids; it is kept as an ablation showing why
/// naive determinism is catastrophic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum TieBreak {
    /// Pick the tied candidate with the lowest node id (deterministic,
    /// globally biased).
    LowestId,
    /// Pick uniformly at random among tied candidates.
    Random,
    /// Pick deterministically from a hash of the agent's knowledge and
    /// the tied candidate set (default).
    #[default]
    Hashed,
}

impl fmt::Display for TieBreak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TieBreak::LowestId => "lowest-id",
            TieBreak::Random => "random",
            TieBreak::Hashed => "hashed",
        };
        f.write_str(s)
    }
}

/// Chooses the next node from `candidates` (the current node's
/// out-neighbours, sorted by id).
///
/// * `avoid` — footprint-marked exits; they are excluded unless that
///   leaves no candidate (stigmergy never strands an agent).
/// * `last_visit` — `None` for the random policy; otherwise the visit
///   lookup the preferential policies rank by: never-visited first, then
///   oldest visit time.
/// * `tie` — how ties are broken; [`TieBreak::Hashed`] mixes
///   `decision_seed` (a digest of the agent's knowledge) with the tied
///   candidate ids.
///
/// Returns `None` only when `candidates` is empty (a node with no
/// out-links — the agent must wait for the topology to change).
pub fn choose_move<F>(
    candidates: &[NodeId],
    avoid: &[NodeId],
    last_visit: Option<F>,
    tie: TieBreak,
    decision_seed: u64,
    rng: &mut impl RngExt,
) -> Option<NodeId>
where
    F: Fn(NodeId) -> Option<Step>,
{
    if candidates.is_empty() {
        return None;
    }
    let unmarked: Vec<NodeId> = candidates.iter().copied().filter(|c| !avoid.contains(c)).collect();
    let pool: &[NodeId] = if unmarked.is_empty() { candidates } else { &unmarked };

    let Some(lookup) = last_visit else {
        return pool.get(rng.random_range(0..pool.len())).copied();
    };

    // Rank: never-visited (None) beats any visit; then older is better.
    let key = |n: NodeId| -> (bool, Step) {
        match lookup(n) {
            None => (false, Step::ZERO),
            Some(t) => (true, t),
        }
    };
    let best = pool.iter().map(|&n| key(n)).min()?;
    let tied: Vec<NodeId> = pool.iter().copied().filter(|&n| key(n) == best).collect();
    match tie {
        TieBreak::LowestId => tied.iter().copied().min(),
        TieBreak::Random => tied.get(rng.random_range(0..tied.len())).copied(),
        TieBreak::Hashed => {
            let mut h = decision_seed;
            for c in &tied {
                h = mix64(h ^ u64::from(c.as_u32()));
            }
            tied.get((h % tied.len().max(1) as u64) as usize).copied()
        }
    }
}

/// SplitMix64 finalizer used by [`TieBreak::Hashed`] and the knowledge
/// digests that feed it.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn visits(entries: &[(usize, u64)]) -> impl Fn(NodeId) -> Option<Step> {
        let map: HashMap<NodeId, Step> =
            entries.iter().map(|&(i, t)| (n(i), Step::new(t))).collect();
        move |node| map.get(&node).copied()
    }

    type NoLookup = fn(NodeId) -> Option<Step>;

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(
            choose_move(&[], &[], None::<NoLookup>, TieBreak::LowestId, 0, &mut rng()),
            None
        );
    }

    #[test]
    fn random_policy_picks_from_candidates() {
        let cands = [n(1), n(2), n(3)];
        let mut r = rng();
        for _ in 0..50 {
            let pick =
                choose_move(&cands, &[], None::<NoLookup>, TieBreak::Random, 0, &mut r).unwrap();
            assert!(cands.contains(&pick));
        }
    }

    #[test]
    fn random_policy_eventually_covers_all_candidates() {
        let cands = [n(1), n(2), n(3)];
        let mut seen = std::collections::HashSet::new();
        let mut r = rng();
        for _ in 0..200 {
            seen.insert(
                choose_move(&cands, &[], None::<NoLookup>, TieBreak::Random, 0, &mut r).unwrap(),
            );
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn never_visited_beats_visited() {
        let pick = choose_move(
            &[n(1), n(2), n(3)],
            &[],
            Some(visits(&[(1, 5), (3, 2)])),
            TieBreak::LowestId,
            0,
            &mut rng(),
        );
        assert_eq!(pick, Some(n(2)));
    }

    #[test]
    fn oldest_visit_wins_when_all_visited() {
        let pick = choose_move(
            &[n(1), n(2), n(3)],
            &[],
            Some(visits(&[(1, 5), (2, 9), (3, 2)])),
            TieBreak::LowestId,
            0,
            &mut rng(),
        );
        assert_eq!(pick, Some(n(3)));
    }

    #[test]
    fn deterministic_tie_break_is_lowest_id() {
        let pick = choose_move(
            &[n(4), n(2), n(9)],
            &[],
            Some(visits(&[])),
            TieBreak::LowestId,
            0,
            &mut rng(),
        );
        assert_eq!(pick, Some(n(2)));
    }

    #[test]
    fn random_tie_break_varies() {
        let cands = [n(1), n(2), n(3)];
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(
                choose_move(&cands, &[], Some(visits(&[])), TieBreak::Random, 0, &mut r).unwrap(),
            );
        }
        assert!(seen.len() > 1, "random tie-break never varied");
    }

    #[test]
    fn avoid_excludes_marked_exits() {
        let pick = choose_move(
            &[n(1), n(2)],
            &[n(1)],
            Some(visits(&[])),
            TieBreak::LowestId,
            0,
            &mut rng(),
        );
        assert_eq!(pick, Some(n(2)));
    }

    #[test]
    fn all_marked_falls_back_to_full_pool() {
        let pick = choose_move(
            &[n(1), n(2)],
            &[n(1), n(2)],
            Some(visits(&[])),
            TieBreak::LowestId,
            0,
            &mut rng(),
        );
        assert_eq!(pick, Some(n(1)));
    }

    #[test]
    fn avoidance_beats_preference() {
        // n1 is never-visited (preferred) but marked; n2 was visited.
        let pick = choose_move(
            &[n(1), n(2)],
            &[n(1)],
            Some(visits(&[(2, 3)])),
            TieBreak::LowestId,
            0,
            &mut rng(),
        );
        assert_eq!(pick, Some(n(2)));
    }

    #[test]
    fn hashed_tie_break_is_deterministic_in_seed() {
        let cands = [n(1), n(2), n(3)];
        let a = choose_move(&cands, &[], Some(visits(&[])), TieBreak::Hashed, 42, &mut rng());
        let b = choose_move(&cands, &[], Some(visits(&[])), TieBreak::Hashed, 42, &mut rng());
        assert_eq!(a, b, "same seed must pick the same candidate");
    }

    #[test]
    fn hashed_tie_break_varies_with_seed() {
        let cands: Vec<NodeId> = (1..=8).map(n).collect();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            seen.insert(choose_move(
                &cands,
                &[],
                Some(visits(&[])),
                TieBreak::Hashed,
                seed,
                &mut rng(),
            ));
        }
        assert!(seen.len() > 3, "hashed tie-break is too biased: {seen:?}");
    }

    #[test]
    fn displays() {
        assert_eq!(MappingPolicy::SuperConscientious.to_string(), "super-conscientious");
        assert_eq!(MappingPolicy::Random.to_string(), "random");
        assert_eq!(MappingPolicy::Conscientious.to_string(), "conscientious");
        assert_eq!(RoutingPolicy::OldestNode.to_string(), "oldest-node");
        assert_eq!(RoutingPolicy::Random.to_string(), "random");
        assert_eq!(TieBreak::LowestId.to_string(), "lowest-id");
        assert_eq!(TieBreak::Random.to_string(), "random");
        assert_eq!(TieBreak::Hashed.to_string(), "hashed");
    }
}
