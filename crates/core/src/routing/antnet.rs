//! AntNet-style probabilistic routing (Di Caro & Dorigo, *AntNet*).
//!
//! Forward ants random-walk from their spawn node, biased by per-node
//! pheromone tables; when one reaches a gateway, a backward ant
//! retraces the recorded path, depositing pheromone on every walked
//! link and installing hop-counted route entries at each node along
//! the way. Pheromone evaporates multiplicatively each step, so the
//! tables track the *current* topology rather than its history.
//!
//! Protocol-zoo boundaries ([`RoutingProtocol`]):
//! * **Construction** — backward-ant retracing installs `RouteEntry {
//!   gateway, next_hop: the walked direction, hops: distance along the
//!   retraced path }` at each intermediate node.
//! * **Meeting state** — a forward ant carries only its partial path;
//!   a backward ant carries the completed path plus deposit budget.
//! * **Decay** — pheromone evaporates by `evaporation` per step (dry
//!   trails are dropped below `1e-6`); route entries older than
//!   `route_ttl` are evicted.
//!
//! Determinism note (ordered-iteration audit): pheromone lives in
//! [`BTreeMap`]s keyed `(gateway, neighbour)` precisely so every
//! iteration — evaporation, weight sums, strongest-trail queries — is
//! in key order, independent of insertion history.

use crate::error::CoreError;
use crate::overhead::Overhead;
use crate::routing::index::RouteIndex;
use crate::routing::protocol::{ProtocolKind, RoutingProtocol};
use crate::routing::table::{RouteEntry, RoutingTable};
use agentnet_engine::sim::{Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::NodeId;
use agentnet_radio::WirelessNetwork;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-node pheromone: trail strength keyed by `(gateway, neighbour)`.
/// A `BTreeMap` (not `HashMap`) so all iteration is deterministic.
pub type PheromoneTable = BTreeMap<(NodeId, NodeId), f64>;

/// Serialized bytes per path entry a forward/backward ant drags along.
const ANT_NODE_BYTES: u64 = 8;

/// Trails weaker than this are dropped entirely.
const MIN_TRAIL: f64 = 1e-6;

/// Configuration for [`AntNetSim`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AntNetConfig {
    /// Number of concurrent forward ants.
    pub population: usize,
    /// Exponent biasing hop choice toward stronger trails.
    pub beta: f64,
    /// Fraction of every trail evaporating per step (in `[0, 1)`).
    pub evaporation: f64,
    /// Total pheromone a backward ant spreads over its path.
    pub deposit: f64,
    /// Baseline attractiveness of an unmarked link.
    pub tau0: f64,
    /// Maximum forward-path length before the ant gives up and
    /// respawns. This is the arm's cache-size knob.
    pub ttl: usize,
    /// Route entries older than this many steps are evicted.
    pub route_ttl: u64,
}

impl AntNetConfig {
    /// Defaults tuned for the paper's 250-node routing network.
    pub fn new(population: usize) -> Self {
        AntNetConfig {
            population,
            beta: 2.0,
            evaporation: 0.05,
            deposit: 1.0,
            tau0: 0.05,
            ttl: 50,
            route_ttl: 150,
        }
    }

    /// Sets the forward-ant path budget (the cache-size knob).
    pub fn ttl(mut self, ttl: usize) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the per-step evaporation fraction.
    pub fn evaporation(mut self, rho: f64) -> Self {
        self.evaporation = rho;
        self
    }

    /// Sets the trail-strength exponent.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the route-entry eviction age in steps.
    pub fn route_ttl(mut self, ttl: u64) -> Self {
        self.route_ttl = ttl;
        self
    }
}

#[derive(Clone, Debug)]
struct Ant {
    /// Nodes visited so far, spawn first, current node last. Never
    /// empty.
    path: Vec<NodeId>,
}

/// The AntNet-style routing arm. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct AntNetSim {
    net: WirelessNetwork,
    config: AntNetConfig,
    ants: Vec<Ant>,
    pheromone: Vec<PheromoneTable>,
    tables: Vec<RoutingTable>,
    is_gateway: Vec<bool>,
    live_gateways: Vec<NodeId>,
    rng: SmallRng,
    connectivity: TimeSeries,
    overhead: Overhead,
    route_index: RouteIndex,
    // Per-step scratch, reused to keep the kernels allocation-free.
    pool: Vec<NodeId>,
    weights: Vec<f64>,
}

impl AntNetSim {
    /// Creates the AntNet arm over a wireless network. Ants spawn on
    /// uniformly random nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty population,
    /// out-of-range `evaporation`, non-positive `deposit`/`tau0`, a
    /// zero `ttl`/`route_ttl`, an empty network, or a network without
    /// gateways.
    pub fn new(net: WirelessNetwork, config: AntNetConfig, seed: u64) -> Result<Self, CoreError> {
        if config.population == 0 {
            return Err(CoreError::invalid("antnet needs at least one ant"));
        }
        if !(0.0..1.0).contains(&config.evaporation) {
            return Err(CoreError::invalid("evaporation must be in [0, 1)"));
        }
        // NaN knobs fail these positive checks, so they are rejected too.
        let weights_valid = config.deposit > 0.0 && config.tau0 > 0.0 && config.beta >= 0.0;
        if !weights_valid {
            return Err(CoreError::invalid(
                "deposit and tau0 must be positive and beta non-negative",
            ));
        }
        if config.ttl == 0 {
            return Err(CoreError::invalid("ant ttl must be positive"));
        }
        if config.route_ttl == 0 {
            return Err(CoreError::invalid("route ttl must be positive"));
        }
        let n = net.node_count();
        if n == 0 {
            return Err(CoreError::invalid("antnet needs a nonempty network"));
        }
        if net.gateways().is_empty() {
            return Err(CoreError::invalid("antnet needs at least one gateway"));
        }
        let mut is_gateway = vec![false; n];
        for &g in net.gateways() {
            if let Some(flag) = is_gateway.get_mut(g.index()) {
                *flag = true;
            }
        }
        let live_gateways = net.gateways().to_vec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let ants = (0..config.population)
            .map(|_| Ant { path: vec![NodeId::new(rng.random_range(0..n))] })
            .collect();
        Ok(AntNetSim {
            net,
            config,
            ants,
            pheromone: vec![PheromoneTable::new(); n],
            tables: vec![RoutingTable::new(); n],
            is_gateway,
            live_gateways,
            rng,
            connectivity: TimeSeries::new(),
            overhead: Overhead::default(),
            route_index: RouteIndex::new(n),
            pool: Vec::new(),
            weights: Vec::new(),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &AntNetConfig {
        &self.config
    }

    /// Per-node pheromone tables, indexed by node id.
    pub fn pheromone_tables(&self) -> &[PheromoneTable] {
        &self.pheromone
    }

    /// Evaporates every trail and drops the ones that dried out.
    #[agentnet::hot_path]
    fn evaporate(&mut self) {
        let keep = 1.0 - self.config.evaporation;
        for table in &mut self.pheromone {
            for tau in table.values_mut() {
                *tau *= keep;
            }
            table.retain(|_, tau| *tau > MIN_TRAIL);
        }
    }

    /// Picks the next hop for ant `i`: unvisited neighbours weighted
    /// `(tau0 + Σ_gw τ)^beta`, falling back to any neighbour when
    /// surrounded by its own path, `None` when isolated.
    #[agentnet::hot_path]
    fn choose_hop_for(&mut self, i: usize) -> Option<NodeId> {
        // Destructure for disjoint field borrows: the ant's path is
        // read while pool/weights/rng are written.
        let AntNetSim { net, config, ants, pheromone, rng, pool, weights, .. } = self;
        let ant = ants.get(i)?;
        let at = *ant.path.last()?;
        pool.clear();
        for &next in net.links().out_neighbors(at) {
            if !ant.path.contains(&next) {
                pool.push(next);
            }
        }
        if pool.is_empty() {
            // Surrounded by its own path: allow revisits rather than
            // stranding the ant.
            pool.extend(net.links().out_neighbors(at));
        }
        if pool.is_empty() {
            return None;
        }
        weights.clear();
        let mut total = 0.0;
        if let Some(trails) = pheromone.get(at.index()) {
            for &cand in pool.iter() {
                let tau: f64 =
                    trails.iter().filter(|((_, nb), _)| *nb == cand).map(|(_, t)| *t).sum();
                let w = (config.tau0 + tau).powf(config.beta);
                weights.push(w);
                total += w;
            }
        }
        let has_mass = total > 0.0; // NaN weights count as massless
        if !has_mass {
            // Degenerate weights (e.g. beta drove them to zero):
            // uniform choice keeps the walk alive.
            let pick = rng.random_range(0..pool.len());
            return pool.get(pick).copied();
        }
        let mut r = rng.random_range(0.0..total);
        for (idx, &w) in weights.iter().enumerate() {
            if r < w {
                return pool.get(idx).copied();
            }
            r -= w;
        }
        pool.last().copied()
    }

    /// The backward ant: retraces `self.ants[i].path` (which ends on
    /// the gateway), deposits pheromone on every walked link, and
    /// installs a route entry at each intermediate node.
    #[agentnet::hot_path]
    fn deliver(&mut self, i: usize, now: Step) {
        let Some(ant) = self.ants.get(i) else {
            return;
        };
        let len = ant.path.len();
        let Some(&gateway) = ant.path.last() else {
            return;
        };
        for (j, (&a, &b)) in ant.path.iter().zip(ant.path.iter().skip(1)).enumerate() {
            // Hops from `a` to the gateway along the retraced path.
            let remaining = len - 1 - j;
            if let Some(trails) = self.pheromone.get_mut(a.index()) {
                let amount = self.config.deposit / remaining as f64;
                *trails.entry((gateway, b)).or_insert(0.0) += amount;
                self.overhead.footprint_writes += 1;
            }
            let a_is_gateway = self.is_gateway.get(a.index()).copied().unwrap_or(false);
            if !a_is_gateway {
                if let Some(table) = self.tables.get_mut(a.index()) {
                    let hops = u32::try_from(remaining).unwrap_or(u32::MAX);
                    table.install(RouteEntry::new(gateway, b, hops, now));
                    self.overhead.table_writes += 1;
                    self.route_index.mark_dirty(a);
                }
            }
        }
    }

    /// Clears the ant's path and respawns it on a random node.
    #[agentnet::hot_path]
    fn respawn(&mut self, i: usize) {
        let n = self.net.node_count();
        let at = NodeId::new(self.rng.random_range(0..n));
        if let Some(ant) = self.ants.get_mut(i) {
            ant.path.clear();
            ant.path.push(at);
        }
    }

    /// One forward step for every ant, in index order.
    #[agentnet::hot_path]
    fn move_ants(&mut self, now: Step) {
        for i in 0..self.ants.len() {
            let Some(next) = self.choose_hop_for(i) else {
                // Isolated node: the ant waits for the radio to
                // reconnect.
                continue;
            };
            let mut path_len = 0;
            if let Some(ant) = self.ants.get_mut(i) {
                ant.path.push(next);
                path_len = ant.path.len();
            }
            self.overhead.migrations += 1;
            self.overhead.migrated_bytes += path_len as u64 * ANT_NODE_BYTES;
            let on_gateway = self.is_gateway.get(next.index()).copied().unwrap_or(false);
            if on_gateway {
                self.deliver(i, now);
                self.respawn(i);
            } else if path_len > self.config.ttl {
                self.respawn(i);
            }
        }
    }
}

impl TimeStepSim for AntNetSim {
    fn step(&mut self, now: Step) {
        // The world changes first: nodes move, batteries decay.
        self.net.advance();
        self.evaporate();
        self.move_ants(now);
        for (v, table) in self.tables.iter_mut().enumerate() {
            if table.evict_older_than(now, self.config.route_ttl) > 0 {
                self.route_index.mark_dirty(NodeId::new(v));
            }
        }
        self.route_index.refresh(
            &self.tables,
            self.net.links(),
            &self.is_gateway,
            self.net.topology_version(),
        );
        let c = self.route_index.connected_fraction(&self.live_gateways);
        self.connectivity.record(c);
    }
}

impl RoutingProtocol for AntNetSim {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::AntNet
    }

    fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    fn live_gateways(&self) -> &[NodeId] {
        &self.live_gateways
    }

    fn connectivity_series(&self) -> &TimeSeries {
        &self.connectivity
    }

    fn overhead(&self) -> Overhead {
        self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_radio::NetworkBuilder;

    fn net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed).unwrap()
    }

    fn sim(seed: u64) -> AntNetSim {
        AntNetSim::new(net(seed), AntNetConfig::new(12), seed ^ 0x5eed).unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            AntNetConfig { population: 0, ..AntNetConfig::new(5) },
            AntNetConfig { evaporation: 1.0, ..AntNetConfig::new(5) },
            AntNetConfig { evaporation: -0.1, ..AntNetConfig::new(5) },
            AntNetConfig { deposit: 0.0, ..AntNetConfig::new(5) },
            AntNetConfig { tau0: 0.0, ..AntNetConfig::new(5) },
            AntNetConfig { beta: -1.0, ..AntNetConfig::new(5) },
            AntNetConfig::new(5).ttl(0),
            AntNetConfig::new(5).route_ttl(0),
        ] {
            assert!(AntNetSim::new(net(1), bad, 1).is_err());
        }
        let empty = NetworkBuilder::new(10).gateways(0).build(1).unwrap();
        assert!(AntNetSim::new(empty, AntNetConfig::new(5), 1).is_err());
    }

    #[test]
    fn backward_ants_install_routes_and_connectivity_rises() {
        let mut s = sim(3);
        let outcome = RoutingProtocol::run(&mut s, 80);
        assert!(RoutingProtocol::route_entries(&s) > 0, "no backward ant ever delivered");
        assert!(outcome.mean_connectivity(40..80).unwrap() > 0.0);
        assert!(s.validate_tables(Step::new(80)).is_ok());
        assert!(s.pheromone_tables().iter().any(|t| !t.is_empty()), "no pheromone deposited");
    }

    #[test]
    fn pheromone_keys_reference_real_gateways() {
        let mut s = sim(5);
        let _ = RoutingProtocol::run(&mut s, 60);
        let gws = s.net.gateways();
        for trails in s.pheromone_tables() {
            for ((gw, _), tau) in trails {
                assert!(gws.contains(gw), "pheromone toward non-gateway {gw}");
                assert!(*tau > 0.0 && tau.is_finite());
            }
        }
    }

    #[test]
    fn evaporation_dries_untended_trails() {
        let mut s = sim(7);
        let _ = RoutingProtocol::run(&mut s, 40);
        let before: f64 = s.pheromone_tables().iter().flat_map(|t| t.values()).copied().sum();
        assert!(before > 0.0);
        // Evaporate with no deposits: total strength strictly decays.
        s.evaporate();
        let after: f64 = s.pheromone_tables().iter().flat_map(|t| t.values()).copied().sum();
        assert!(after < before);
    }

    #[test]
    fn ttl_bounds_forward_paths() {
        let mut s = AntNetSim::new(net(9), AntNetConfig::new(10).ttl(5), 17).unwrap();
        let _ = RoutingProtocol::run(&mut s, 60);
        for ant in &s.ants {
            assert!(ant.path.len() <= 6, "path {} escaped ttl+1", ant.path.len());
        }
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let mut s = AntNetSim::new(net(2), AntNetConfig::new(10), seed).unwrap();
            let out = RoutingProtocol::run(&mut s, 50);
            (out, s.tables.clone(), s.pheromone.clone(), s.overhead)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn recorded_connectivity_matches_from_scratch_reference() {
        let mut s = sim(11);
        let _ = RoutingProtocol::run(&mut s, 60);
        let last = s.connectivity.values().last().copied().unwrap();
        assert_eq!(last, RoutingProtocol::connectivity(&s));
    }
}
