//! Next-hop routing entries and per-node routing tables.
//!
//! Nodes hold classic ad-hoc-network routing state: for each known
//! gateway, *which neighbour to forward to next* plus a hop estimate and
//! freshness. A node can reach the outside world iff following next-hop
//! entries (over currently-live links) eventually lands on a gateway —
//! chains are validated by [`super::sim::RoutingSim`] each step, so a
//! single broken link upstream invalidates every route that relied on it
//! until some agent re-repairs the chain.

use agentnet_engine::Step;
use agentnet_graph::NodeId;
use serde::{Deserialize, Serialize};

/// One routing-table entry: "to reach `gateway`, forward to `next_hop`
/// (expected `hops` hops in total)".
///
/// ```
/// use agentnet_core::routing::RouteEntry;
/// use agentnet_engine::Step;
/// use agentnet_graph::NodeId;
///
/// let e = RouteEntry::new(NodeId::new(9), NodeId::new(3), 4, Step::new(17));
/// assert_eq!(e.gateway, NodeId::new(9));
/// assert_eq!(e.next_hop, NodeId::new(3));
/// assert_eq!(e.age(Step::new(20)), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// The gateway this entry leads towards.
    pub gateway: NodeId,
    /// The neighbour packets should be forwarded to.
    pub next_hop: NodeId,
    /// Estimated hop count to the gateway via `next_hop`.
    pub hops: u32,
    /// When the entry was written.
    pub installed_at: Step,
}

impl RouteEntry {
    /// Creates an entry.
    pub fn new(gateway: NodeId, next_hop: NodeId, hops: u32, installed_at: Step) -> Self {
        RouteEntry { gateway, next_hop, hops, installed_at }
    }

    /// Entry age in steps at time `now`. Entries stamped *ahead* of
    /// `now` — installed by a co-located exchange at a step boundary,
    /// where the installer's clock has already advanced past the
    /// reader's — report age 0 instead of panicking in
    /// [`Step::since`](agentnet_engine::Step::since).
    pub fn age(&self, now: Step) -> u64 {
        now.checked_since(self.installed_at).unwrap_or(0)
    }
}

/// A node's routing table: at most one [`RouteEntry`] per gateway.
///
/// Agents *overwrite* the entry for a gateway whenever they pass — in a
/// dynamic network an agent's recent knowledge beats a stale entry (the
/// paper: agents update tables "using \[their\] own recent knowledge of
/// the network").
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    entries: Vec<RouteEntry>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable { entries: Vec::new() }
    }

    /// Number of gateway entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entry towards `gateway`, if any.
    pub fn entry_for(&self, gateway: NodeId) -> Option<&RouteEntry> {
        self.entries.iter().find(|e| e.gateway == gateway)
    }

    /// Installs `entry`, replacing any existing entry for the same
    /// gateway.
    pub fn install(&mut self, entry: RouteEntry) {
        match self.entries.iter_mut().find(|e| e.gateway == entry.gateway) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// All stored entries.
    pub fn entries(&self) -> &[RouteEntry] {
        &self.entries
    }

    /// Distinct next-hop neighbours across all entries (the forwarding
    /// options chain validation explores).
    pub fn next_hops(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.next_hop)
    }

    /// The entry with the fewest estimated hops (ties: lower gateway id).
    pub fn best_entry(&self) -> Option<&RouteEntry> {
        self.entries.iter().min_by_key(|e| (e.hops, e.gateway))
    }

    /// Removes entries older than `max_age` at time `now`; returns how
    /// many were dropped. (Optional garbage collection — the headline
    /// experiments keep entries forever and rely on chain validation.)
    pub fn evict_older_than(&mut self, now: Step, max_age: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.age(now) <= max_age);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn e(gw: usize, next: usize, hops: u32, at: u64) -> RouteEntry {
        RouteEntry::new(n(gw), n(next), hops, Step::new(at))
    }

    #[test]
    fn entry_accessors() {
        let entry = e(9, 3, 4, 17);
        assert_eq!(entry.gateway, n(9));
        assert_eq!(entry.next_hop, n(3));
        assert_eq!(entry.hops, 4);
        assert_eq!(entry.age(Step::new(20)), 3);
        assert_eq!(entry.age(Step::new(17)), 0);
    }

    #[test]
    fn age_saturates_for_future_stamped_entries() {
        // An entry installed by a co-located exchange can carry a stamp
        // one step ahead of the reader's clock; its age is 0, not a
        // `Step::since` time-reversal panic.
        assert_eq!(e(9, 3, 4, 17).age(Step::new(10)), 0);
        assert_eq!(e(9, 3, 4, 11).age(Step::new(10)), 0);
    }

    #[test]
    fn eviction_keeps_future_stamped_entries() {
        let mut t = RoutingTable::new();
        t.install(e(9, 3, 4, 12)); // stamped ahead of `now`
        t.install(e(7, 2, 2, 0)); // genuinely stale
        assert_eq!(t.evict_older_than(Step::new(10), 5), 1);
        assert!(t.entry_for(n(9)).is_some());
        assert!(t.entry_for(n(7)).is_none());
    }

    #[test]
    fn install_replaces_same_gateway() {
        let mut t = RoutingTable::new();
        t.install(e(9, 3, 4, 0));
        t.install(e(9, 5, 2, 8));
        assert_eq!(t.len(), 1);
        let entry = t.entry_for(n(9)).unwrap();
        assert_eq!(entry.next_hop, n(5));
        assert_eq!(entry.hops, 2);
    }

    #[test]
    fn install_keeps_distinct_gateways() {
        let mut t = RoutingTable::new();
        t.install(e(9, 3, 4, 0));
        t.install(e(7, 3, 1, 0));
        assert_eq!(t.len(), 2);
        assert!(t.entry_for(n(7)).is_some());
        assert!(t.entry_for(n(8)).is_none());
    }

    #[test]
    fn best_entry_prefers_fewest_hops() {
        let mut t = RoutingTable::new();
        t.install(e(9, 3, 4, 0));
        t.install(e(7, 2, 2, 0));
        t.install(e(8, 1, 2, 0));
        let best = t.best_entry().unwrap();
        assert_eq!(best.gateway, n(7), "hop tie must break by gateway id");
        assert!(RoutingTable::new().best_entry().is_none());
    }

    #[test]
    fn next_hops_lists_forwarding_options() {
        let mut t = RoutingTable::new();
        t.install(e(9, 3, 4, 0));
        t.install(e(7, 2, 2, 0));
        let hops: Vec<NodeId> = t.next_hops().collect();
        assert_eq!(hops, vec![n(3), n(2)]);
    }

    #[test]
    fn eviction_drops_stale_entries() {
        let mut t = RoutingTable::new();
        t.install(e(9, 3, 4, 0));
        t.install(e(7, 2, 2, 90));
        assert_eq!(t.evict_older_than(Step::new(100), 50), 1);
        assert!(t.entry_for(n(9)).is_none());
        assert!(t.entry_for(n(7)).is_some());
        assert_eq!(t.evict_older_than(Step::new(100), 50), 0);
    }

    #[test]
    fn empty_table_behaviour() {
        let t = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.next_hops().count(), 0);
    }
}
