//! Packet-level traffic on top of agent-maintained routing tables.
//!
//! The connectivity metric asks whether a route *exists*; this module
//! asks whether routes actually *deliver*. Every step, packets are
//! injected at random non-gateway nodes addressed to "the outside
//! world"; each in-flight packet advances one hop per step by following
//! the current node's best live routing entry. Delivery ratio, latency
//! and hop stretch (vs. the instantaneous shortest path at send time)
//! quantify the quality of the tables the agents maintain — "an average
//! packet will use a multi-hop path to reach one of those gateways".

use crate::routing::sim::RoutingSim;
use agentnet_engine::sim::{Step, TimeStepSim};
use agentnet_graph::paths::bfs_distances;
use agentnet_graph::NodeId;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Traffic-generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Packets injected per simulation step.
    pub packets_per_step: usize,
    /// Hops (= steps) before an undelivered packet is dropped.
    pub ttl: u32,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig { packets_per_step: 5, ttl: 64 }
    }
}

#[derive(Clone, Debug)]
struct Packet {
    at: NodeId,
    age: u32,
    hops: u32,
    /// Shortest hop distance to any gateway when the packet was sent
    /// (`None` = unreachable at send time; excluded from stretch).
    ideal: Option<u32>,
}

/// Aggregate traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Packets injected.
    pub sent: u64,
    /// Packets that reached a gateway.
    pub delivered: u64,
    /// Packets dropped on TTL expiry.
    pub dropped: u64,
    /// Sum of hops over delivered packets.
    pub delivered_hops: u64,
    /// Sum of ideal (shortest-path-at-send-time) hops over delivered
    /// packets that were reachable at send time.
    pub delivered_ideal_hops: u64,
    /// Delivered packets included in the stretch denominator.
    pub stretch_samples: u64,
}

impl TrafficStats {
    /// Fraction of injected packets delivered (counting still-in-flight
    /// packets as undelivered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Mean hops per delivered packet.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.delivered_hops as f64 / self.delivered as f64)
    }

    /// Mean ratio of actual hops to the shortest possible at send time
    /// (≥ 1 in expectation; slightly <1 is possible when topology drift
    /// shortens paths mid-flight).
    pub fn mean_stretch(&self) -> Option<f64> {
        (self.stretch_samples > 0 && self.delivered_ideal_hops > 0).then(|| {
            self.delivered_hops as f64 * self.stretch_samples as f64
                / (self.delivered as f64 * self.delivered_ideal_hops as f64)
        })
    }
}

/// A routing simulation with packet traffic layered on top.
///
/// Wraps a [`RoutingSim`]; each step advances the network + agents, then
/// injects and forwards packets along the freshly updated tables.
///
/// ```no_run
/// use agentnet_core::policy::RoutingPolicy;
/// use agentnet_core::routing::{RoutingConfig, RoutingSim};
/// use agentnet_core::routing::traffic::{TrafficConfig, TrafficSim};
/// use agentnet_radio::NetworkBuilder;
///
/// let net = NetworkBuilder::new(60).gateways(4).build(1).unwrap();
/// let sim = RoutingSim::new(net, RoutingConfig::new(RoutingPolicy::OldestNode, 20), 2).unwrap();
/// let mut traffic = TrafficSim::new(sim, TrafficConfig::default(), 3);
/// traffic.run(200);
/// println!("delivered {:.1}%", 100.0 * traffic.stats().delivery_ratio());
/// ```
#[derive(Clone, Debug)]
pub struct TrafficSim {
    sim: RoutingSim,
    config: TrafficConfig,
    rng: SmallRng,
    in_flight: Vec<Packet>,
    stats: TrafficStats,
}

impl TrafficSim {
    /// Wraps a routing simulation with traffic generation.
    pub fn new(sim: RoutingSim, config: TrafficConfig, seed: u64) -> Self {
        TrafficSim {
            sim,
            config,
            rng: SmallRng::seed_from_u64(seed),
            in_flight: Vec::new(),
            stats: TrafficStats::default(),
        }
    }

    /// The wrapped routing simulation.
    pub fn routing(&self) -> &RoutingSim {
        &self.sim
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Runs for exactly `steps` steps.
    pub fn run(&mut self, steps: u64) -> TrafficStats {
        let mut now = Step::ZERO;
        for _ in 0..steps {
            self.step(now);
            now = now.next();
        }
        self.stats
    }

    fn inject(&mut self) {
        let n = self.sim.network().node_count();
        let links = self.sim.network().links();
        let gateways = self.sim.network().gateways();
        for _ in 0..self.config.packets_per_step {
            // Source: a uniformly random non-gateway node.
            let at = loop {
                let candidate = NodeId::new(self.rng.random_range(0..n));
                if !gateways.contains(&candidate) {
                    break candidate;
                }
            };
            let dist = bfs_distances(links, at);
            let ideal = gateways
                .iter()
                .map(|g| dist[g.index()])
                .min()
                .filter(|&d| d != usize::MAX)
                .map(|d| d as u32);
            self.in_flight.push(Packet { at, age: 0, hops: 0, ideal });
            self.stats.sent += 1;
        }
    }

    fn forward(&mut self) {
        let links = self.sim.network().links();
        let mut keep = Vec::with_capacity(self.in_flight.len());
        for mut packet in self.in_flight.drain(..) {
            packet.age += 1;
            // Forward along the freshest viable entry: fewest claimed
            // hops among entries whose link is currently live.
            let table = self.sim.table(packet.at);
            let next = table
                .entries()
                .iter()
                .filter(|e| links.has_edge(packet.at, e.next_hop))
                .min_by_key(|e| (e.hops, e.gateway))
                .map(|e| e.next_hop);
            if let Some(next) = next {
                packet.at = next;
                packet.hops += 1;
            }
            if self.sim.network().gateways().contains(&packet.at) {
                self.stats.delivered += 1;
                self.stats.delivered_hops += u64::from(packet.hops);
                if let Some(ideal) = packet.ideal {
                    self.stats.delivered_ideal_hops += u64::from(ideal);
                    self.stats.stretch_samples += 1;
                }
            } else if packet.age >= self.config.ttl {
                self.stats.dropped += 1;
            } else {
                keep.push(packet);
            }
        }
        self.in_flight = keep;
    }
}

impl TimeStepSim for TrafficSim {
    fn step(&mut self, now: Step) {
        self.sim.step(now);
        self.inject();
        self.forward();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoutingPolicy;
    use crate::routing::RoutingConfig;
    use agentnet_radio::NetworkBuilder;

    fn traffic(policy: RoutingPolicy, seed: u64) -> TrafficSim {
        let net = NetworkBuilder::new(50)
            .gateways(4)
            .target_edges(400)
            .mobile_fraction(0.3)
            .build(9)
            .unwrap();
        let sim = RoutingSim::new(net, RoutingConfig::new(policy, 20), seed).unwrap();
        TrafficSim::new(sim, TrafficConfig { packets_per_step: 4, ttl: 40 }, seed)
    }

    #[test]
    fn packets_are_injected_and_resolved() {
        let mut t = traffic(RoutingPolicy::OldestNode, 1);
        let stats = t.run(150);
        assert_eq!(stats.sent, 150 * 4);
        assert_eq!(stats.sent, stats.delivered + stats.dropped + t.in_flight() as u64);
        assert!(stats.delivered > 0, "no packet ever delivered");
    }

    #[test]
    fn delivery_ratio_is_a_fraction_and_latency_positive() {
        let mut t = traffic(RoutingPolicy::OldestNode, 2);
        let stats = t.run(150);
        let ratio = stats.delivery_ratio();
        assert!((0.0..=1.0).contains(&ratio));
        let latency = stats.mean_latency().expect("some deliveries");
        assert!(latency >= 1.0, "gateway delivery takes at least one hop, got {latency}");
    }

    #[test]
    fn stretch_is_at_least_one_ish() {
        let mut t = traffic(RoutingPolicy::OldestNode, 3);
        let stats = t.run(200);
        if let Some(stretch) = stats.mean_stretch() {
            assert!(stretch > 0.8, "stretch {stretch} implausibly low");
            assert!(stretch < 20.0, "stretch {stretch} implausibly high");
        }
    }

    #[test]
    fn better_tables_deliver_more() {
        let oldest = traffic(RoutingPolicy::OldestNode, 4).run(200).delivery_ratio();
        let random = traffic(RoutingPolicy::Random, 4).run(200).delivery_ratio();
        assert!(
            oldest > random,
            "oldest-node tables ({oldest:.3}) should deliver more than random ({random:.3})"
        );
    }

    #[test]
    fn empty_traffic_config_sends_nothing() {
        let net = NetworkBuilder::new(30).gateways(2).build(3).unwrap();
        let sim = RoutingSim::new(net, RoutingConfig::new(RoutingPolicy::Random, 5), 1).unwrap();
        let mut t = TrafficSim::new(sim, TrafficConfig { packets_per_step: 0, ttl: 10 }, 1);
        let stats = t.run(20);
        assert_eq!(stats.sent, 0);
        assert_eq!(stats.delivery_ratio(), 0.0);
        assert!(stats.mean_latency().is_none());
    }

    #[test]
    fn traffic_is_deterministic() {
        let a = traffic(RoutingPolicy::OldestNode, 7).run(100);
        let b = traffic(RoutingPolicy::OldestNode, 7).run(100);
        assert_eq!(a, b);
    }
}
