//! Stigmergic routing: the paper's deferred future-work arm.
//!
//! The paper uses footprints only to spread *mapping* agents apart and
//! explicitly defers stigmergy-for-routing. This arm supplies that
//! extension on the existing [`FootprintBoard`] substrate: wandering
//! agents leave repulsive footprints so the swarm disperses along
//! freshest-footprint gradients, and every agent carries a hop-counted
//! gateway claim that it renews at gateways and lays down as a route
//! trail while walking away — so routes form along the *reverse* of the
//! dispersal gradient, pointing back toward the freshest gateway
//! contact.
//!
//! Protocol-zoo boundaries ([`RoutingProtocol`]):
//! * **Construction** — a trail entry `RouteEntry { gateway, next_hop:
//!   previous node, hops }` installed at each node the claim-carrying
//!   agent enters, while the claim is at most `trail_length` hops old.
//! * **Meeting state** — nothing agent-to-agent; the only exchange is
//!   indirect, through footprints on the node itself.
//! * **Decay** — footprints expire out of the `footprint_window`;
//!   route entries older than `route_ttl` are evicted every step.

use crate::agent::AgentId;
use crate::error::CoreError;
use crate::overhead::Overhead;
use crate::routing::index::RouteIndex;
use crate::routing::protocol::{ProtocolKind, RoutingProtocol};
use crate::routing::table::{RouteEntry, RoutingTable};
use crate::stigmergy::FootprintBoard;
use agentnet_engine::sim::{Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::NodeId;
use agentnet_radio::WirelessNetwork;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Serialized size of a stigmergic agent's mobile state: the carried
/// gateway claim (gateway id + hop count), nothing else — the arm's
/// whole pitch is that dispersal knowledge lives on the nodes.
const AGENT_STATE_BYTES: u64 = 12;

/// Configuration for [`StigRouteSim`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StigRouteConfig {
    /// Number of wandering agents.
    pub population: usize,
    /// Footprints each node's board retains.
    pub footprint_capacity: usize,
    /// Steps a footprint repels followers.
    pub footprint_window: u64,
    /// Maximum hop count a carried claim may reach before it is dropped
    /// — the length of the route trail laid from each gateway contact.
    /// This is the arm's cache-size knob.
    pub trail_length: u32,
    /// Route entries older than this many steps are evicted.
    pub route_ttl: u64,
}

impl StigRouteConfig {
    /// Defaults tuned for the paper's 250-node routing network.
    pub fn new(population: usize) -> Self {
        StigRouteConfig {
            population,
            footprint_capacity: 4,
            footprint_window: 30,
            trail_length: 20,
            route_ttl: 120,
        }
    }

    /// Sets the route-trail length (the cache-size knob).
    pub fn trail_length(mut self, hops: u32) -> Self {
        self.trail_length = hops;
        self
    }

    /// Sets the footprint repulsion window in steps.
    pub fn footprint_window(mut self, window: u64) -> Self {
        self.footprint_window = window;
        self
    }

    /// Sets the per-node footprint board capacity.
    pub fn footprint_capacity(mut self, capacity: usize) -> Self {
        self.footprint_capacity = capacity;
        self
    }

    /// Sets the route-entry eviction age in steps.
    pub fn route_ttl(mut self, ttl: u64) -> Self {
        self.route_ttl = ttl;
        self
    }
}

/// A hop-counted gateway claim carried by a wandering agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Claim {
    gateway: NodeId,
    hops: u32,
}

#[derive(Clone, Debug)]
struct StigAgent {
    at: NodeId,
    claim: Option<Claim>,
}

/// The stigmergic routing arm. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct StigRouteSim {
    net: WirelessNetwork,
    config: StigRouteConfig,
    agents: Vec<StigAgent>,
    tables: Vec<RoutingTable>,
    boards: Vec<FootprintBoard>,
    is_gateway: Vec<bool>,
    live_gateways: Vec<NodeId>,
    rng: SmallRng,
    connectivity: TimeSeries,
    overhead: Overhead,
    route_index: RouteIndex,
    // Per-step scratch, reused across steps to keep the kernel
    // allocation-free.
    pool: Vec<NodeId>,
    fresh: Vec<NodeId>,
    avoid: Vec<NodeId>,
}

impl StigRouteSim {
    /// Creates the stigmergic arm over a wireless network. Agents start
    /// on uniformly random nodes; one starting on a gateway immediately
    /// carries a zero-hop claim — the same spawn rule (and RNG stream
    /// shape) as the legacy agent arm.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty population,
    /// zero trail length / footprint capacity / route TTL, an empty
    /// network, or a network without gateways.
    pub fn new(
        net: WirelessNetwork,
        config: StigRouteConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if config.population == 0 {
            return Err(CoreError::invalid("stigmergic routing needs at least one agent"));
        }
        if config.footprint_capacity == 0 {
            return Err(CoreError::invalid("footprint capacity must be positive"));
        }
        if config.trail_length == 0 {
            return Err(CoreError::invalid("trail length must be positive"));
        }
        if config.route_ttl == 0 {
            return Err(CoreError::invalid("route ttl must be positive"));
        }
        let n = net.node_count();
        if n == 0 {
            return Err(CoreError::invalid("stigmergic routing needs a nonempty network"));
        }
        if net.gateways().is_empty() {
            return Err(CoreError::invalid("stigmergic routing needs at least one gateway"));
        }
        let mut is_gateway = vec![false; n];
        for &g in net.gateways() {
            if let Some(flag) = is_gateway.get_mut(g.index()) {
                *flag = true;
            }
        }
        let live_gateways = net.gateways().to_vec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let agents = (0..config.population)
            .map(|_| {
                let at = NodeId::new(rng.random_range(0..n));
                let on_gateway = is_gateway.get(at.index()).copied().unwrap_or(false);
                let claim = on_gateway.then_some(Claim { gateway: at, hops: 0 });
                StigAgent { at, claim }
            })
            .collect();
        let boards = (0..n).map(|_| FootprintBoard::new(config.footprint_capacity)).collect();
        Ok(StigRouteSim {
            net,
            config,
            agents,
            tables: vec![RoutingTable::new(); n],
            boards,
            is_gateway,
            live_gateways,
            rng,
            connectivity: TimeSeries::new(),
            overhead: Overhead::default(),
            route_index: RouteIndex::new(n),
            pool: Vec::new(),
            fresh: Vec::new(),
            avoid: Vec::new(),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &StigRouteConfig {
        &self.config
    }

    /// Current node of each agent, in agent order.
    pub fn positions(&self) -> Vec<NodeId> {
        self.agents.iter().map(|a| a.at).collect()
    }

    /// Per-node footprint boards, indexed by node id.
    pub fn boards(&self) -> &[FootprintBoard] {
        &self.boards
    }

    /// Walks every agent one hop along the anti-footprint gradient,
    /// imprinting its exit and laying the route trail on arrival.
    #[agentnet::hot_path]
    fn advance_agents(&mut self, now: Step) {
        for i in 0..self.agents.len() {
            let Some(agent) = self.agents.get(i) else {
                continue;
            };
            let at = agent.at;
            self.pool.clear();
            self.pool.extend(self.net.links().out_neighbors(at));
            if self.pool.is_empty() {
                // Isolated node: wait for the radio to reconnect.
                continue;
            }
            // Repulsion: drop exits a recent footprint already points at,
            // unless that would strand the agent.
            if let Some(board) = self.boards.get(at.index()) {
                board.marked_targets_into(now, self.config.footprint_window, &mut self.avoid);
            } else {
                self.avoid.clear();
            }
            self.fresh.clear();
            for &cand in &self.pool {
                // `avoid` is sorted+deduped by marked_targets_into.
                if self.avoid.binary_search(&cand).is_err() {
                    self.fresh.push(cand);
                }
            }
            let pool = if self.fresh.is_empty() { &self.pool } else { &self.fresh };
            let pick = self.rng.random_range(0..pool.len());
            let Some(&target) = pool.get(pick) else {
                continue;
            };
            if let Some(board) = self.boards.get_mut(at.index()) {
                board.imprint(AgentId::new(i), target, now);
                self.overhead.footprint_writes += 1;
            }
            self.overhead.migrations += 1;
            self.overhead.migrated_bytes += AGENT_STATE_BYTES;
            let Some(agent) = self.agents.get_mut(i) else {
                continue;
            };
            agent.at = target;
            let on_gateway = self.is_gateway.get(target.index()).copied().unwrap_or(false);
            if on_gateway {
                // Fresh gateway contact: restart the trail at zero hops.
                agent.claim = Some(Claim { gateway: target, hops: 0 });
            } else if let Some(claim) = agent.claim.as_mut() {
                claim.hops = claim.hops.saturating_add(1);
                if claim.hops <= self.config.trail_length {
                    if let Some(table) = self.tables.get_mut(target.index()) {
                        table.install(RouteEntry::new(claim.gateway, at, claim.hops, now));
                        self.overhead.table_writes += 1;
                        self.route_index.mark_dirty(target);
                    }
                } else {
                    // Trail exhausted; wander claimless until the next
                    // gateway contact.
                    agent.claim = None;
                }
            }
        }
    }

    /// Evicts route entries older than `route_ttl`.
    #[agentnet::hot_path]
    fn decay(&mut self, now: Step) {
        for (v, table) in self.tables.iter_mut().enumerate() {
            if table.evict_older_than(now, self.config.route_ttl) > 0 {
                self.route_index.mark_dirty(NodeId::new(v));
            }
        }
    }
}

impl TimeStepSim for StigRouteSim {
    fn step(&mut self, now: Step) {
        // The world changes first: nodes move, batteries decay.
        self.net.advance();
        self.advance_agents(now);
        self.decay(now);
        self.route_index.refresh(
            &self.tables,
            self.net.links(),
            &self.is_gateway,
            self.net.topology_version(),
        );
        let c = self.route_index.connected_fraction(&self.live_gateways);
        self.connectivity.record(c);
    }
}

impl RoutingProtocol for StigRouteSim {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Stigmergic
    }

    fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    fn live_gateways(&self) -> &[NodeId] {
        &self.live_gateways
    }

    fn connectivity_series(&self) -> &TimeSeries {
        &self.connectivity
    }

    fn overhead(&self) -> Overhead {
        self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_radio::NetworkBuilder;

    fn net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed).unwrap()
    }

    fn sim(seed: u64) -> StigRouteSim {
        StigRouteSim::new(net(seed), StigRouteConfig::new(12), seed ^ 0xabcd).unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            StigRouteConfig { population: 0, ..StigRouteConfig::new(5) },
            StigRouteConfig::new(5).trail_length(0),
            StigRouteConfig::new(5).footprint_capacity(0),
            StigRouteConfig::new(5).route_ttl(0),
        ] {
            assert!(StigRouteSim::new(net(1), bad, 1).is_err());
        }
        let empty = NetworkBuilder::new(10).gateways(0).build(1).unwrap();
        assert!(StigRouteSim::new(empty, StigRouteConfig::new(5), 1).is_err());
    }

    #[test]
    fn trails_form_and_connectivity_rises() {
        let mut s = sim(3);
        let outcome = RoutingProtocol::run(&mut s, 80);
        assert!(RoutingProtocol::route_entries(&s) > 0, "no trail entries installed");
        let late = outcome.mean_connectivity(40..80).unwrap();
        assert!(late > 0.0, "no node ever routed to a gateway (late mean {late})");
        assert!(s.validate_tables(Step::new(80)).is_ok());
    }

    #[test]
    fn trail_length_bounds_installed_hops() {
        let mut s =
            StigRouteSim::new(net(5), StigRouteConfig::new(12).trail_length(3), 99).unwrap();
        let _ = RoutingProtocol::run(&mut s, 60);
        for table in RoutingProtocol::tables(&s) {
            for e in table.entries() {
                assert!(e.hops >= 1 && e.hops <= 3, "hops {} escaped the trail bound", e.hops);
            }
        }
    }

    #[test]
    fn route_ttl_evicts_stale_entries() {
        let mut s = sim(7);
        let _ = RoutingProtocol::run(&mut s, 100);
        let now = Step::new(100);
        for table in RoutingProtocol::tables(&s) {
            for e in table.entries() {
                assert!(e.age(now) <= s.config().route_ttl, "stale entry survived decay");
            }
        }
    }

    #[test]
    fn footprints_are_actually_written() {
        let mut s = sim(9);
        let _ = RoutingProtocol::run(&mut s, 20);
        assert!(RoutingProtocol::overhead(&s).footprint_writes > 0);
        assert!(RoutingProtocol::overhead(&s).migrations > 0);
        assert!(s.boards().iter().any(|b| !b.is_empty()));
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let mut s = StigRouteSim::new(net(2), StigRouteConfig::new(10), seed).unwrap();
            let out = RoutingProtocol::run(&mut s, 50);
            (out, s.tables.clone(), s.overhead)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn recorded_connectivity_matches_from_scratch_reference() {
        let mut s = sim(11);
        let _ = RoutingProtocol::run(&mut s, 60);
        let last = s.connectivity.values().last().copied().unwrap();
        assert_eq!(last, RoutingProtocol::connectivity(&s));
    }
}
