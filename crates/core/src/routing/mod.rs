//! The dynamic-routing simulation (paper §III).
//!
//! Mobile agents maintain per-node routing tables in a wireless ad-hoc
//! network whose links break and reform as nodes move and batteries decay.
//! Nodes run no programs; all route maintenance is carried by the agents.
//!
//! * [`table`] — explicit hop-list routes and per-node routing tables;
//!   the connectivity metric counts nodes whose table holds a route whose
//!   every hop is a currently-live directed link.
//! * [`sim`] — the simulation itself, with random / oldest-node agents,
//!   optional direct communication ("visiting") and optional stigmergy
//!   (the paper's future-work extension).
//! * [`index`] — the persistent forwarding-graph index that revalidates
//!   chains from link/table deltas instead of rebuilding per step.
//! * [`traffic`] — packet-level evaluation: inject packets and forward
//!   them along the agent-maintained tables, measuring delivery ratio,
//!   latency and hop stretch.
//! * [`protocol`] — the protocol-zoo abstraction: the [`RoutingProtocol`]
//!   trait every routing arm (legacy agents, stigmergic, AntNet,
//!   epidemic/spray-and-wait flooding) runs under.
//! * [`stigroute`] — the stigmergic arm: route along freshest-footprint
//!   gradients laid by wandering agents.
//! * [`antnet`] — the AntNet-style arm: per-node probabilistic pheromone
//!   tables updated by forward/backward ants.

pub mod antnet;
pub mod index;
pub mod protocol;
pub mod sim;
pub mod stigroute;
pub mod table;
pub mod traffic;

pub use antnet::{AntNetConfig, AntNetSim};
pub use index::RouteIndex;
pub use protocol::{chain_connectivity, ProtocolKind, RoutingProtocol};
pub use sim::{RoutingConfig, RoutingOutcome, RoutingSim};
pub use stigroute::{StigRouteConfig, StigRouteSim};
pub use table::{RouteEntry, RoutingTable};
pub use traffic::{TrafficConfig, TrafficSim, TrafficStats};
