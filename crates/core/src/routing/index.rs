//! Persistent route-revalidation index.
//!
//! [`super::sim::RoutingSim`] must re-validate every node's next-hop
//! chain each step. The reference implementation
//! ([`super::sim::RoutingSim::connectivity`]) rebuilds the whole
//! forwarding graph from the routing tables every step; this index keeps
//! that graph *persistent* and applies deltas instead:
//!
//! * a table write dirties only the written node ([`RouteIndex::mark_dirty`]);
//! * a link-topology change (detected through
//!   [`agentnet_radio::WirelessNetwork::topology_version`]) forces a full
//!   resync, since any entry's liveness may have flipped;
//! * the connectivity metric is a reverse BFS from the live gateways over
//!   the persistent graph's in-edges, using reusable scratch.
//!
//! On a quiescent network (nothing moved, no tables written) a step's
//! revalidation is O(live gateways + reachable set) with zero heap
//! allocation in steady state.

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use crate::routing::table::RoutingTable;
use agentnet_graph::{DiGraph, NodeId};

/// Incrementally-maintained forwarding graph plus reverse-BFS scratch.
///
/// The index is only a cache: [`RouteIndex::refresh`] must be called with
/// the current tables/links before [`RouteIndex::connected_fraction`] is
/// meaningful, and its result is always bit-identical to the from-scratch
/// [`super::sim::RoutingSim::connectivity`] reference.
#[derive(Clone, Debug)]
pub struct RouteIndex {
    /// `v -> next_hop` for every table entry of a non-gateway `v` whose
    /// link is currently live.
    forwarding: DiGraph,
    /// Per-node dirty flag (table or gateway-status changed).
    dirty: Vec<bool>,
    /// Indices of dirty nodes, deduplicated via `dirty`.
    dirty_list: Vec<usize>,
    /// Link-topology version the forwarding graph was synced against;
    /// `u64::MAX` forces a full resync on first refresh.
    topo_version: u64,
    /// Reverse-BFS visited flags.
    reached: Vec<bool>,
    /// Reverse-BFS frontier (index-addressed queue).
    queue: Vec<usize>,
    /// Old out-row scratch while rewriting a dirty node's edges.
    old_row: Vec<NodeId>,
}

impl RouteIndex {
    /// Creates an index for `n` nodes, initially unsynced.
    pub fn new(n: usize) -> Self {
        RouteIndex {
            forwarding: DiGraph::new(n),
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            topo_version: u64::MAX,
            reached: vec![false; n],
            queue: Vec::new(),
            old_row: Vec::new(),
        }
    }

    /// The current forwarding graph (for tests and diagnostics).
    pub fn forwarding(&self) -> &DiGraph {
        &self.forwarding
    }

    /// Marks `node`'s forwarding row stale — call after any routing-table
    /// write to it or after its gateway status changes.
    #[agentnet::hot_path]
    pub fn mark_dirty(&mut self, node: NodeId) {
        let i = node.index();
        if let Some(flag) = self.dirty.get_mut(i) {
            if !*flag {
                *flag = true;
                self.dirty_list.push(i);
            }
        }
    }

    /// Brings the forwarding graph in sync with `tables` + `links`.
    ///
    /// If `net_version` differs from the last synced version the whole
    /// graph is rebuilt (any link may have flipped); otherwise only the
    /// rows of nodes marked dirty since the last refresh are rewritten.
    #[agentnet::hot_path]
    pub fn refresh(
        &mut self,
        tables: &[RoutingTable],
        links: &DiGraph,
        is_gateway: &[bool],
        net_version: u64,
    ) {
        if net_version != self.topo_version {
            self.topo_version = net_version;
            for flag in &mut self.dirty {
                *flag = false;
            }
            self.dirty_list.clear();
            self.forwarding.clear_edges();
            for v in 0..tables.len() {
                self.write_row(v, tables, links, is_gateway);
            }
            return;
        }
        let mut list = std::mem::take(&mut self.dirty_list);
        for &v in &list {
            if let Some(flag) = self.dirty.get_mut(v) {
                *flag = false;
            }
            self.clear_row(v);
            self.write_row(v, tables, links, is_gateway);
        }
        list.clear();
        self.dirty_list = list;
    }

    /// Removes all out-edges of `v` from the forwarding graph.
    fn clear_row(&mut self, v: usize) {
        let from = NodeId::new(v);
        self.old_row.clear();
        self.old_row.extend_from_slice(self.forwarding.out_neighbors(from));
        let mut row = std::mem::take(&mut self.old_row);
        for &to in &row {
            self.forwarding.remove_edge(from, to);
        }
        row.clear();
        self.old_row = row;
    }

    /// Adds `v`'s live-link next hops, assuming its row is clear.
    fn write_row(
        &mut self,
        v: usize,
        tables: &[RoutingTable],
        links: &DiGraph,
        is_gateway: &[bool],
    ) {
        if is_gateway.get(v).copied().unwrap_or(true) {
            return;
        }
        let from = NodeId::new(v);
        let Some(table) = tables.get(v) else { return };
        for next in table.next_hops() {
            if links.has_edge(from, next) {
                self.forwarding.add_edge(from, next);
            }
        }
    }

    /// Fraction of nodes whose next-hop chain reaches some live gateway
    /// (gateways count as connected) — reverse BFS from the gateways over
    /// the persistent forwarding graph, allocation-free in steady state.
    #[agentnet::hot_path]
    pub fn connected_fraction(&mut self, live_gateways: &[NodeId]) -> f64 {
        let n = self.forwarding.node_count();
        if n == 0 {
            return 0.0;
        }
        for flag in &mut self.reached {
            *flag = false;
        }
        self.queue.clear();
        let mut count = 0usize;
        for &g in live_gateways {
            match self.reached.get_mut(g.index()) {
                Some(flag) if !*flag => {
                    *flag = true;
                    count += 1;
                    self.queue.push(g.index());
                }
                _ => {}
            }
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let Some(&q) = self.queue.get(head) else { break };
            let v = NodeId::new(q);
            head += 1;
            for i in 0..self.forwarding.in_neighbors(v).len() {
                let Some(&from) = self.forwarding.in_neighbors(v).get(i) else { break };
                let u = from.index();
                match self.reached.get_mut(u) {
                    Some(flag) if !*flag => {
                        *flag = true;
                        count += 1;
                        self.queue.push(u);
                    }
                    _ => {}
                }
            }
        }
        count as f64 / n as f64
    }

    /// Per-node reachability flags as computed by the *last*
    /// [`connected_fraction`](Self::connected_fraction) call: `true` for
    /// every node whose next-hop chain reached one of the live gateways
    /// passed to that call (gateways themselves included). All-`false`
    /// before the first call. Serving front ends read this to answer
    /// per-node reachability queries without a second BFS.
    pub fn reached(&self) -> &[bool] {
        &self.reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::table::RouteEntry;
    use agentnet_engine::Step;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Line 3 <- 2 <- 1 <- 0(gateway) of live links, tables pointing back.
    fn fixture() -> (Vec<RoutingTable>, DiGraph, Vec<bool>) {
        let mut links = DiGraph::new(4);
        for v in 1..4 {
            links.add_edge(n(v), n(v - 1));
            links.add_edge(n(v - 1), n(v));
        }
        let mut tables = vec![RoutingTable::new(); 4];
        for (v, table) in tables.iter_mut().enumerate().skip(1) {
            table.install(RouteEntry::new(n(0), n(v - 1), v as u32, Step::ZERO));
        }
        let mut is_gateway = vec![false; 4];
        is_gateway[0] = true;
        (tables, links, is_gateway)
    }

    #[test]
    fn full_resync_then_incremental_updates_agree() {
        let (mut tables, links, is_gateway) = fixture();
        let mut idx = RouteIndex::new(4);
        idx.refresh(&tables, &links, &is_gateway, 0);
        assert_eq!(idx.connected_fraction(&[n(0)]), 1.0);

        // Break node 2's route (point it off-link): only 0 and 1 remain.
        tables[2].install(RouteEntry::new(n(0), n(3), 2, Step::ZERO));
        idx.mark_dirty(n(2));
        idx.refresh(&tables, &links, &is_gateway, 0);
        // 2 -> 3 is a live link but 3 -> 2 -> 3 never reaches the gateway.
        assert_eq!(idx.connected_fraction(&[n(0)]), 0.5);

        // Repair it; incremental update restores full connectivity.
        tables[2].install(RouteEntry::new(n(0), n(1), 2, Step::ZERO));
        idx.mark_dirty(n(2));
        idx.refresh(&tables, &links, &is_gateway, 0);
        assert_eq!(idx.connected_fraction(&[n(0)]), 1.0);
    }

    #[test]
    fn topology_version_change_forces_full_resync() {
        let (tables, mut links, is_gateway) = fixture();
        let mut idx = RouteIndex::new(4);
        idx.refresh(&tables, &links, &is_gateway, 0);
        assert_eq!(idx.connected_fraction(&[n(0)]), 1.0);
        // The 1 -> 0 link dies; without a dirty mark only the version
        // bump can catch it.
        links.remove_edge(n(1), n(0));
        idx.refresh(&tables, &links, &is_gateway, 1);
        assert_eq!(idx.connected_fraction(&[n(0)]), 0.25);
    }

    #[test]
    fn no_live_gateways_means_no_connectivity() {
        let (tables, links, is_gateway) = fixture();
        let mut idx = RouteIndex::new(4);
        idx.refresh(&tables, &links, &is_gateway, 0);
        assert_eq!(idx.connected_fraction(&[]), 0.0);
    }

    #[test]
    fn reached_flags_match_the_reported_fraction() {
        let (mut tables, links, is_gateway) = fixture();
        let mut idx = RouteIndex::new(4);
        assert_eq!(idx.reached(), &[false; 4], "flags are clear before any BFS");
        idx.refresh(&tables, &links, &is_gateway, 0);
        assert_eq!(idx.connected_fraction(&[n(0)]), 1.0);
        assert_eq!(idx.reached(), &[true; 4]);

        // Break node 2's chain: 2 and 3 drop out of the reached set.
        tables[2].install(RouteEntry::new(n(0), n(3), 2, Step::ZERO));
        idx.mark_dirty(n(2));
        idx.refresh(&tables, &links, &is_gateway, 0);
        let fraction = idx.connected_fraction(&[n(0)]);
        let count = idx.reached().iter().filter(|&&ok| ok).count();
        assert_eq!(fraction, count as f64 / 4.0);
        assert_eq!(idx.reached(), &[true, true, false, false]);
    }

    #[test]
    fn duplicate_gateways_count_once() {
        let (tables, links, is_gateway) = fixture();
        let mut idx = RouteIndex::new(4);
        idx.refresh(&tables, &links, &is_gateway, 0);
        assert_eq!(idx.connected_fraction(&[n(0), n(0)]), 1.0);
    }
}
