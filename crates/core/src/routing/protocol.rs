//! The protocol-zoo abstraction: one trait every routing arm runs under.
//!
//! A [`RoutingProtocol`] abstracts the three things a routing arm does
//! on the shared wireless substrate:
//!
//! 1. **Route-table construction** — how [`RoutingTable`] entries come
//!    to exist ([`RoutingProtocol::tables`]): carried agent claims
//!    (legacy arm), footprint trails (stigmergic), backward-ant
//!    retracing (AntNet), or flooded gateway announcements (epidemic /
//!    spray-and-wait).
//! 2. **State exchanged at a meeting** — what crosses a link when two
//!    parties are co-located or within radio range
//!    ([`ProtocolKind::meeting_state`] documents each arm).
//! 3. **Per-step decay** — how stale state leaves the system: route
//!    eviction by [`RouteEntry::age`], pheromone evaporation, footprint
//!    windows, or announcement sequence supersession.
//!
//! Every arm steps the *same* [`agentnet_radio::WirelessNetwork`] under
//! the same seed, so mobility and link churn are byte-identical across
//! arms — the only thing that varies is the protocol. The trait is
//! object-safe: the experiment harness and the validation battery drive
//! `Box<dyn RoutingProtocol>` built by a protocol factory, and the
//! provided [`run`](RoutingProtocol::run),
//! [`validate_tables`](RoutingProtocol::validate_tables) and
//! [`mean_route_age`](RoutingProtocol::mean_route_age) work uniformly on
//! any arm.

use crate::error::CoreError;
use crate::overhead::Overhead;
use crate::routing::sim::{RoutingOutcome, RoutingSim};
use crate::routing::table::RoutingTable;
use agentnet_engine::sim::{run_until, Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::connectivity::reaches_any;
use agentnet_graph::{DiGraph, NodeId};
use agentnet_radio::WirelessNetwork;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The routing arms of the protocol zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The paper's mobile-agent routing ([`RoutingSim`]): agents carry
    /// hop-counted gateway claims and install them as they walk.
    Agents,
    /// Footprint-gradient routing ([`super::StigRouteSim`]): wandering
    /// agents disperse via [`crate::stigmergy::FootprintBoard`]s and lay
    /// freshness-decaying route trails away from gateways.
    Stigmergic,
    /// AntNet-style probabilistic routing ([`super::AntNetSim`]):
    /// forward ants sample paths by pheromone, backward ants retrace,
    /// deposit, and install routes.
    AntNet,
    /// Epidemic flooding baseline
    /// ([`FloodSim`](https://en.wikipedia.org/wiki/Epidemic_routing)-style,
    /// implemented in `agentnet-baselines`): every node re-broadcasts
    /// each fresh gateway announcement exactly once.
    Epidemic,
    /// Binary spray-and-wait baseline (also in `agentnet-baselines`):
    /// announcements carry a copy budget halved at each handoff, then
    /// wait.
    SprayAndWait,
}

impl ProtocolKind {
    /// Every arm, in canonical (registry/report) order.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Agents,
        ProtocolKind::Stigmergic,
        ProtocolKind::AntNet,
        ProtocolKind::Epidemic,
        ProtocolKind::SprayAndWait,
    ];

    /// The stable CLI/report name of the arm.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Agents => "agents",
            ProtocolKind::Stigmergic => "stigmergic",
            ProtocolKind::AntNet => "antnet",
            ProtocolKind::Epidemic => "epidemic",
            ProtocolKind::SprayAndWait => "spray-and-wait",
        }
    }

    /// What state crosses a link "at a meeting" under this arm — the
    /// trait boundary DESIGN.md documents per arm.
    pub fn meeting_state(self) -> &'static str {
        match self {
            ProtocolKind::Agents => {
                "migrating agent state: carried gateway claim + visit memory (and best-route \
                 exchange when two agents are co-located)"
            }
            ProtocolKind::Stigmergic => {
                "migrating agent state: carried gateway claim; footprints are left on the node \
                 itself (indirect exchange, no co-location needed)"
            }
            ProtocolKind::AntNet => {
                "forward ant state: the partial path; backward ants retrace it depositing \
                 per-(gateway, neighbour) pheromone"
            }
            ProtocolKind::Epidemic => {
                "a sequence-numbered gateway announcement, re-broadcast once per node per \
                 sequence number"
            }
            ProtocolKind::SprayAndWait => {
                "a sequence-numbered gateway announcement plus a copy budget, halved at each \
                 handoff"
            }
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ProtocolKind {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ProtocolKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| CoreError::invalid("unknown protocol (see ProtocolKind::ALL)"))
    }
}

/// One routing arm of the protocol zoo, steppable on the shared
/// wireless substrate. See the [module docs](self) for what the trait
/// abstracts; [`TimeStepSim`] supplies the per-step driver. Arms are
/// `Send` so a serving daemon can own one on a dedicated step thread —
/// every arm is plain data plus seeded RNG streams.
pub trait RoutingProtocol: TimeStepSim + Send {
    /// Which arm this is.
    fn kind(&self) -> ProtocolKind;

    /// The wireless substrate the arm routes over.
    fn network(&self) -> &WirelessNetwork;

    /// Every node's routing table, indexed by node id.
    fn tables(&self) -> &[RoutingTable];

    /// The gateways packets may exit through (arms without failure
    /// injection report all gateways).
    fn live_gateways(&self) -> &[NodeId];

    /// Per-step connectivity recorded by the arm's step loop.
    fn connectivity_series(&self) -> &TimeSeries;

    /// Migration / message / footprint / table-write accounting — the
    /// shared overhead currency all arms are compared in.
    fn overhead(&self) -> Overhead;

    /// Fraction of nodes whose next-hop chains reach a live gateway
    /// over currently-live links — the *from-scratch reference*
    /// recomputed from [`tables`](Self::tables), against which the
    /// incremental per-step series is differentially checked.
    fn connectivity(&self) -> f64 {
        chain_connectivity(self.network(), self.tables(), self.live_gateways())
    }

    /// Runs for exactly `steps` steps, recording connectivity per step.
    fn run(&mut self, steps: u64) -> RoutingOutcome {
        let _ = run_until(self, Step::new(steps));
        RoutingOutcome { connectivity: self.connectivity_series().clone() }
    }

    /// Total installed route entries across all tables.
    fn route_entries(&self) -> usize {
        self.tables().iter().map(RoutingTable::len).sum()
    }

    /// Mean age (steps since installation, saturating) over all route
    /// entries at `now`; `0.0` with no entries.
    fn mean_route_age(&self, now: Step) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for table in self.tables() {
            for e in table.entries() {
                total += e.age(now);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// The arm-uniform table invariant, checkable on any `dyn` arm
    /// after stepping to `now`: every entry references in-range nodes,
    /// routes to an actual gateway, never forwards to itself, claims at
    /// least one hop, and was not installed in the future.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating entry.
    fn validate_tables(&self, now: Step) -> Result<(), String> {
        let net = self.network();
        let n = net.node_count();
        for (v, table) in self.tables().iter().enumerate() {
            let from = NodeId::new(v);
            for e in table.entries() {
                if e.next_hop.index() >= n || e.gateway.index() >= n {
                    return Err(format!(
                        "{}: entry at {from} references out-of-range node (next {}, gw {})",
                        self.kind(),
                        e.next_hop,
                        e.gateway
                    ));
                }
                if !net.gateways().contains(&e.gateway) {
                    return Err(format!(
                        "{}: entry at {from} routes to non-gateway {}",
                        self.kind(),
                        e.gateway
                    ));
                }
                if e.next_hop == from {
                    return Err(format!("{}: entry at {from} forwards to itself", self.kind()));
                }
                if e.hops == 0 {
                    return Err(format!("{}: entry at {from} claims zero hops", self.kind()));
                }
                if now.checked_since(e.installed_at).is_none() {
                    return Err(format!(
                        "{}: entry at {from} installed in the future ({} > {now})",
                        self.kind(),
                        e.installed_at
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The shared from-scratch connectivity reference: build the forwarding
/// graph from `tables` (gateway rows skipped, only currently-live links
/// kept) and count the fraction of nodes reaching some live gateway.
/// Identical semantics to [`RoutingSim::connectivity`].
pub fn chain_connectivity(
    net: &WirelessNetwork,
    tables: &[RoutingTable],
    live_gateways: &[NodeId],
) -> f64 {
    let links = net.links();
    let n = net.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut forwarding = DiGraph::new(n);
    for (v, table) in tables.iter().enumerate() {
        let from = NodeId::new(v);
        if net.gateways().contains(&from) {
            continue;
        }
        for next in table.next_hops() {
            if links.has_edge(from, next) {
                forwarding.add_edge(from, next);
            }
        }
    }
    let valid = reaches_any(&forwarding, live_gateways);
    valid.iter().filter(|&&ok| ok).count() as f64 / n as f64
}

/// The legacy arm is the zoo's first citizen: [`RoutingSim`] unchanged,
/// exposed through the trait. Every accessor delegates to the inherent
/// method, so trait-driven runs are byte-identical to the pre-zoo
/// figures.
impl RoutingProtocol for RoutingSim {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Agents
    }

    fn network(&self) -> &WirelessNetwork {
        RoutingSim::network(self)
    }

    fn tables(&self) -> &[RoutingTable] {
        RoutingSim::tables(self)
    }

    fn live_gateways(&self) -> &[NodeId] {
        RoutingSim::live_gateways(self)
    }

    fn connectivity_series(&self) -> &TimeSeries {
        RoutingSim::connectivity_series(self)
    }

    fn overhead(&self) -> Overhead {
        RoutingSim::overhead(self)
    }

    fn connectivity(&self) -> f64 {
        RoutingSim::connectivity(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoutingPolicy;
    use crate::routing::sim::RoutingConfig;
    use agentnet_radio::NetworkBuilder;

    fn net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed).unwrap()
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(kind.name().parse::<ProtocolKind>().unwrap(), kind);
            assert!(!kind.meeting_state().is_empty());
        }
        assert!("dijkstra".parse::<ProtocolKind>().is_err());
    }

    #[test]
    fn kind_names_are_distinct_and_stable() {
        let names: Vec<&str> = ProtocolKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["agents", "stigmergic", "antnet", "epidemic", "spray-and-wait"]);
    }

    #[test]
    fn legacy_sim_runs_as_a_trait_object() {
        let config = RoutingConfig::new(RoutingPolicy::OldestNode, 20);
        let inherent = {
            let mut sim = RoutingSim::new(net(3), config.clone(), 7).unwrap();
            sim.run(40)
        };
        let mut boxed: Box<dyn RoutingProtocol> =
            Box::new(RoutingSim::new(net(3), config, 7).unwrap());
        let via_trait = boxed.run(40);
        assert_eq!(via_trait, inherent, "trait-driven run must be byte-identical");
        assert_eq!(boxed.kind(), ProtocolKind::Agents);
        assert_eq!(boxed.tables().len(), 40);
        assert!(boxed.validate_tables(Step::new(40)).is_ok());
        assert!(boxed.route_entries() > 0);
        assert!(boxed.mean_route_age(Step::new(40)) >= 0.0);
    }

    #[test]
    fn trait_connectivity_matches_inherent_reference() {
        let config = RoutingConfig::new(RoutingPolicy::Random, 15);
        let mut sim = RoutingSim::new(net(5), config, 9).unwrap();
        let _ = RoutingSim::run(&mut sim, 30);
        let inherent = RoutingSim::connectivity(&sim);
        let shared = chain_connectivity(
            RoutingSim::network(&sim),
            RoutingSim::tables(&sim),
            RoutingSim::live_gateways(&sim),
        );
        assert_eq!(inherent, shared);
    }

    #[test]
    fn validate_tables_rejects_a_poisoned_entry() {
        use crate::routing::table::RouteEntry;
        let config = RoutingConfig::new(RoutingPolicy::OldestNode, 10);
        let mut sim = RoutingSim::new(net(11), config, 3).unwrap();
        let _ = RoutingSim::run(&mut sim, 20);
        // Forge a self-forwarding entry through the documented-panic
        // table accessor's mutable counterpart path: poke via tables()
        // is read-only, so rebuild a fake table check instead.
        struct Poisoned {
            inner: RoutingSim,
            tables: Vec<RoutingTable>,
        }
        impl TimeStepSim for Poisoned {
            fn step(&mut self, now: Step) {
                self.inner.step(now);
            }
        }
        impl RoutingProtocol for Poisoned {
            fn kind(&self) -> ProtocolKind {
                ProtocolKind::Agents
            }
            fn network(&self) -> &WirelessNetwork {
                RoutingSim::network(&self.inner)
            }
            fn tables(&self) -> &[RoutingTable] {
                &self.tables
            }
            fn live_gateways(&self) -> &[NodeId] {
                RoutingSim::live_gateways(&self.inner)
            }
            fn connectivity_series(&self) -> &TimeSeries {
                RoutingSim::connectivity_series(&self.inner)
            }
            fn overhead(&self) -> Overhead {
                RoutingSim::overhead(&self.inner)
            }
        }
        let gw = RoutingSim::network(&sim).gateways()[0];
        let mut tables = vec![RoutingTable::new(); 40];
        tables[5].install(RouteEntry {
            gateway: gw,
            next_hop: NodeId::new(5),
            hops: 2,
            installed_at: Step::new(1),
        });
        let poisoned = Poisoned { inner: sim, tables };
        let err = poisoned.validate_tables(Step::new(20)).unwrap_err();
        assert!(err.contains("forwards to itself"), "{err}");
    }
}
