//! The dynamic-routing simulation.
//!
//! Per step (paper §III.C), every agent: (1) looks at the neighbours of
//! its node and decides where to go; (2) optionally shares knowledge with
//! co-located agents; (3) moves, learning the edge it travels; (4) updates
//! the routing table of the node it now occupies from its own recent
//! knowledge. The network itself advances first — nodes move, batteries
//! decay, links break and reform.
//!
//! # Routing model
//!
//! Agents carry the distance to the gateway they most recently visited
//! (bounded by their *history size*). Walking away from a gateway, an
//! agent installs at every node it lands on a [`RouteEntry`] pointing
//! *back the way it came*. A node is **connected** iff following next-hop
//! entries over currently-live links reaches some gateway — the chain is
//! re-validated every step, so link churn silently invalidates routes
//! until agents re-repair them.

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use crate::agent::AgentId;
use crate::comm::GroupScratch;
use crate::error::CoreError;
use crate::history::VisitMemory;
use crate::overhead::{routing_agent_state_bytes, Overhead};
use crate::policy::{choose_move, RoutingPolicy, TieBreak};
use crate::routing::index::RouteIndex;
use crate::routing::table::{RouteEntry, RoutingTable};
use crate::stigmergy::FootprintBoard;
use crate::trace::{TraceEvent, TraceLog};
use agentnet_engine::invariant::{run_until_checked, InvariantSet, InvariantViolation};
use agentnet_engine::sim::{run_until, Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::connectivity::reaches_any;
use agentnet_graph::{DiGraph, NodeId};
use agentnet_radio::WirelessNetwork;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a routing run.
///
/// ```
/// use agentnet_core::routing::RoutingConfig;
/// use agentnet_core::policy::RoutingPolicy;
///
/// let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 100)
///     .history_size(20)
///     .communication(true);
/// assert_eq!(cfg.population, 100);
/// assert!(cfg.communication);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Movement algorithm shared by the whole team.
    pub policy: RoutingPolicy,
    /// Number of agents.
    pub population: usize,
    /// Bounded history: caps how many hops from a gateway an agent keeps
    /// claiming a route, and the size of the visit memory the oldest-node
    /// policy steers by.
    pub history_size: usize,
    /// Direct communication: co-located agents exchange their best route
    /// claim and merge visit memories ("visiting").
    pub communication: bool,
    /// Stigmergy: agents avoid footprint-marked exits (the paper's
    /// future-work extension for routing).
    pub stigmergic: bool,
    /// Tie-breaking rule for equally-preferred neighbours.
    pub tie_break: TieBreak,
    /// Footprints kept per node board.
    pub footprint_capacity: usize,
    /// Footprint recency window in steps.
    pub footprint_window: u64,
    /// Ablation: run the sharing phase *before* the movement decision
    /// (the paper's order is decide-then-share).
    pub share_before_decide: bool,
    /// Trace ring capacity; 0 disables event tracing (the default).
    pub trace_capacity: usize,
}

impl RoutingConfig {
    /// Defaults: history 20, no communication, no stigmergy, random
    /// tie-break, paper phase order.
    pub fn new(policy: RoutingPolicy, population: usize) -> Self {
        RoutingConfig {
            policy,
            population,
            history_size: 20,
            communication: false,
            stigmergic: false,
            tie_break: TieBreak::default(),
            footprint_capacity: FootprintBoard::DEFAULT_CAPACITY,
            footprint_window: u64::MAX,
            share_before_decide: false,
            trace_capacity: 0,
        }
    }

    /// Sets the bounded history size.
    pub fn history_size(mut self, size: usize) -> Self {
        self.history_size = size;
        self
    }

    /// Enables or disables direct communication (visiting).
    pub fn communication(mut self, on: bool) -> Self {
        self.communication = on;
        self
    }

    /// Enables or disables stigmergy.
    pub fn stigmergic(mut self, on: bool) -> Self {
        self.stigmergic = on;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Sets the per-node footprint board capacity.
    pub fn footprint_capacity(mut self, capacity: usize) -> Self {
        self.footprint_capacity = capacity;
        self
    }

    /// Sets the footprint recency window.
    pub fn footprint_window(mut self, window: u64) -> Self {
        self.footprint_window = window;
        self
    }

    /// Sets the share/decide phase order ablation.
    pub fn share_before_decide(mut self, on: bool) -> Self {
        self.share_before_decide = on;
        self
    }

    /// Enables event tracing with the given ring capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// A route claim carried by an agent: "`hops` hops ago I was at (or
/// learned a route to) `gateway`".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Carried {
    gateway: NodeId,
    hops: u32,
}

#[derive(Clone, Debug)]
struct RoutingAgent {
    at: NodeId,
    carried: Option<Carried>,
    memory: VisitMemory,
}

/// Result of a routing run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Fraction of nodes with a valid gateway route, per step.
    pub connectivity: TimeSeries,
}

impl RoutingOutcome {
    /// Mean connectivity over the half-open step window (the paper uses
    /// steps 150–300 after convergence). `None` if the window is empty or
    /// out of range.
    pub fn mean_connectivity(&self, window: std::ops::Range<usize>) -> Option<f64> {
        self.connectivity.window_mean(window)
    }
}

/// The dynamic-routing simulation.
#[derive(Clone, Debug)]
pub struct RoutingSim {
    net: WirelessNetwork,
    config: RoutingConfig,
    agents: Vec<RoutingAgent>,
    tables: Vec<RoutingTable>,
    boards: Vec<FootprintBoard>,
    is_gateway: Vec<bool>,
    live_gateways: Vec<NodeId>,
    rng: SmallRng,
    connectivity: TimeSeries,
    overhead: Overhead,
    trace: TraceLog,
    /// Persistent forwarding graph revalidated from deltas each step —
    /// always agrees with the from-scratch [`Self::connectivity`].
    route_index: RouteIndex,
    groups: GroupScratch,
    pending: Vec<Option<NodeId>>,
    avoid: Vec<NodeId>,
}

impl RoutingSim {
    /// Creates a routing simulation over a (typically dynamic) wireless
    /// network. Agents start on uniformly random nodes; one starting on a
    /// gateway immediately carries a zero-hop route claim.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty population, zero
    /// history, an empty network, or a network without gateways.
    pub fn new(net: WirelessNetwork, config: RoutingConfig, seed: u64) -> Result<Self, CoreError> {
        if config.population == 0 {
            return Err(CoreError::invalid("routing needs at least one agent"));
        }
        if config.history_size == 0 {
            return Err(CoreError::invalid("history size must be positive"));
        }
        if config.footprint_capacity == 0 {
            return Err(CoreError::invalid("footprint capacity must be positive"));
        }
        let n = net.node_count();
        if n == 0 {
            return Err(CoreError::invalid("routing needs a nonempty network"));
        }
        if net.gateways().is_empty() {
            return Err(CoreError::invalid("routing needs at least one gateway"));
        }
        let mut is_gateway = vec![false; n];
        for &g in net.gateways() {
            if let Some(flag) = is_gateway.get_mut(g.index()) {
                *flag = true;
            }
        }
        let live_gateways = net.gateways().to_vec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let agents = (0..config.population)
            .map(|_| {
                let at = NodeId::new(rng.random_range(0..n));
                let mut memory = VisitMemory::new(config.history_size);
                memory.record(at, Step::ZERO);
                let on_gateway = is_gateway.get(at.index()).copied().unwrap_or(false);
                let carried = on_gateway.then_some(Carried { gateway: at, hops: 0 });
                RoutingAgent { at, carried, memory }
            })
            .collect();
        let boards = (0..n).map(|_| FootprintBoard::new(config.footprint_capacity)).collect();
        let trace = TraceLog::new(config.trace_capacity);
        Ok(RoutingSim {
            net,
            config,
            agents,
            tables: vec![RoutingTable::new(); n],
            boards,
            is_gateway,
            live_gateways,
            rng,
            connectivity: TimeSeries::new(),
            overhead: Overhead::default(),
            trace,
            route_index: RouteIndex::new(n),
            groups: GroupScratch::new(),
            pending: Vec::new(),
            avoid: Vec::new(),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// The underlying wireless network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    /// Mutable access to the network for fault-injection scenarios
    /// (e.g. draining a node's battery mid-run). Changes take effect
    /// at the next step's [`WirelessNetwork::advance`].
    pub fn network_mut(&mut self) -> &mut WirelessNetwork {
        &mut self.net
    }

    /// Fails a gateway's uplink: the node keeps its radio (agents can
    /// still traverse it) but no longer counts as an exit to the outside
    /// world — agents stop resetting route claims there and the
    /// connectivity metric stops accepting chains that end on it.
    /// Returns `false` if `id` was not a live gateway.
    pub fn fail_gateway(&mut self, id: NodeId) -> bool {
        let Some(pos) = self.live_gateways.iter().position(|&g| g == id) else {
            return false;
        };
        self.live_gateways.remove(pos);
        if let Some(flag) = self.is_gateway.get_mut(id.index()) {
            *flag = false;
        }
        // Its forwarding row changes shape (non-gateways export their
        // table entries); the next refresh must rewrite it.
        self.route_index.mark_dirty(id);
        true
    }

    /// Gateways whose uplink is still live.
    pub fn live_gateways(&self) -> &[NodeId] {
        &self.live_gateways
    }

    /// The routing table of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[allow(clippy::indexing_slicing)] // the documented panic above
    pub fn table(&self, node: NodeId) -> &RoutingTable {
        // Documented panic on an out-of-range node; inspection-only
        // accessor, never on the step path.
        // agentlint::allow(no-panic-in-kernel)
        &self.tables[node.index()]
    }

    /// Every node's routing table, indexed by node id.
    pub fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    /// Current node of each agent, in agent order.
    pub fn positions(&self) -> Vec<NodeId> {
        self.agents.iter().map(|a| a.at).collect()
    }

    /// Per-node footprint boards, indexed by node id.
    pub fn boards(&self) -> &[FootprintBoard] {
        &self.boards
    }

    /// Size of each agent's visit memory, in agent order.
    pub fn memory_sizes(&self) -> Vec<usize> {
        self.agents.iter().map(|a| a.memory.len()).collect()
    }

    /// Hop count of each agent's carried route claim (`None` when the
    /// agent holds no claim), in agent order.
    pub fn carried_hops(&self) -> Vec<Option<u32>> {
        self.agents.iter().map(|a| a.carried.map(|c| c.hops)).collect()
    }

    /// The recorded connectivity series.
    pub fn connectivity_series(&self) -> &TimeSeries {
        &self.connectivity
    }

    /// Cumulative overhead counters (migrations, meeting messages,
    /// footprint and table writes) for the run so far.
    pub fn overhead(&self) -> Overhead {
        self.overhead
    }

    /// The event trace (empty unless
    /// [`RoutingConfig::trace_capacity`] is nonzero).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Fraction of nodes whose next-hop chain currently reaches a gateway
    /// (gateways count as connected).
    ///
    /// A node may chain through *any* entry of downstream tables — a
    /// packet for the outside world accepts any gateway.
    ///
    /// This is the *from-scratch reference*: it rebuilds the forwarding
    /// graph from the tables on every call, so it stays correct under
    /// arbitrary external mutation (tests poke tables directly). The
    /// step loop instead records the delta-maintained
    /// [`RouteIndex`] result, which is asserted identical by the
    /// [`crate::validate::routing_invariants`] differential check.
    pub fn connectivity(&self) -> f64 {
        let links = self.net.links();
        let n = self.net.node_count();
        // Forwarding graph: v -> next_hop for every table entry whose link
        // is currently live.
        let mut forwarding = DiGraph::new(n);
        for (v, (&gw, table)) in self.is_gateway.iter().zip(&self.tables).enumerate() {
            if gw {
                continue;
            }
            let from = NodeId::new(v);
            for next in table.next_hops() {
                if links.has_edge(from, next) {
                    forwarding.add_edge(from, next);
                }
            }
        }
        let valid = reaches_any(&forwarding, &self.live_gateways);
        valid.iter().filter(|&&v| v).count() as f64 / n as f64
    }

    /// Runs for exactly `steps` steps, recording connectivity per step.
    pub fn run(&mut self, steps: u64) -> RoutingOutcome {
        let _ = run_until(self, Step::new(steps));
        RoutingOutcome { connectivity: self.connectivity.clone() }
    }

    /// Like [`Self::run`], but validates `checks` after every step (see
    /// [`crate::validate::routing_invariants`] for the standard set).
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`]; the simulation is left
    /// in the violating state for inspection.
    pub fn run_checked(
        &mut self,
        steps: u64,
        checks: &mut InvariantSet<Self>,
    ) -> Result<RoutingOutcome, InvariantViolation> {
        run_until_checked(self, Step::new(steps), checks)?;
        Ok(RoutingOutcome { connectivity: self.connectivity.clone() })
    }

    /// Movement-decision phase; fills `self.pending` with each agent's
    /// chosen target, reusing the scratch vectors across steps.
    fn decide(&mut self, now: Step) {
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        let mut avoid = std::mem::take(&mut self.avoid);
        for i in 0..self.agents.len() {
            let Some(agent) = self.agents.get(i) else { continue };
            let at = agent.at;
            let candidates = self.net.links().out_neighbors(at);
            if self.config.stigmergic {
                if let Some(board) = self.boards.get_mut(at.index()) {
                    board.marked_targets_into(now, self.config.footprint_window, &mut avoid);
                }
            } else {
                avoid.clear();
            }
            let choice = match self.config.policy {
                RoutingPolicy::Random => choose_move(
                    candidates,
                    &avoid,
                    None::<fn(NodeId) -> Option<Step>>,
                    self.config.tie_break,
                    0,
                    &mut self.rng,
                ),
                RoutingPolicy::OldestNode => choose_move(
                    candidates,
                    &avoid,
                    Some(|n: NodeId| agent.memory.last_visit(n)),
                    self.config.tie_break,
                    agent.memory.content_hash(),
                    &mut self.rng,
                ),
            };
            if self.config.stigmergic {
                if let Some(target) = choice {
                    if let Some(board) = self.boards.get_mut(at.index()) {
                        board.imprint(AgentId::new(i), target, now);
                    }
                    self.overhead.footprint_writes += 1;
                    if self.config.trace_capacity > 0 {
                        self.trace.record(TraceEvent::Footprint {
                            agent: AgentId::new(i),
                            node: at,
                            target,
                            at: now,
                        });
                    }
                }
            }
            pending.push(choice);
        }
        self.pending = pending;
        self.avoid = avoid;
    }

    /// Meeting phase: each co-located group agrees on the best route
    /// claim (fewest hops) and merges visit memories, leaving every
    /// participant identical — "all participating agents are going to be
    /// identical in term of history knowledge".
    fn share(&mut self, now: Step) {
        self.groups.group(self.net.node_count(), self.agents.iter().map(|a| a.at));
        let groups = std::mem::take(&mut self.groups);
        for (node, group) in groups.groups() {
            if group.len() < 2 {
                continue;
            }
            self.overhead.meeting_messages += (group.len() * (group.len() - 1)) as u64;
            if self.config.trace_capacity > 0 {
                self.trace.record(TraceEvent::Meeting {
                    node,
                    participants: group.len() as u32,
                    at: now,
                });
            }
            let best = group
                .iter()
                .filter_map(|&i| self.agents.get(i).and_then(|a| a.carried))
                .min_by_key(|c| (c.hops, c.gateway));
            if let Some(best) = best {
                for &i in group {
                    if let Some(agent) = self.agents.get_mut(i) {
                        agent.carried = Some(best);
                    }
                }
            }
            let Some((&first, rest)) = group.split_first() else { continue };
            let Some(mut merged) = self.agents.get(first).map(|a| a.memory.clone()) else {
                continue;
            };
            for &i in rest {
                if let Some(agent) = self.agents.get(i) {
                    merged.merge(&agent.memory);
                }
            }
            merged.canonicalize();
            for &i in group {
                if let Some(agent) = self.agents.get_mut(i) {
                    agent.memory = merged.clone();
                }
            }
        }
        self.groups = groups;
    }

    /// Move phase + routing-table update at the arrival node.
    fn move_and_update(&mut self, pending: &[Option<NodeId>], now: Step) {
        let history = self.config.history_size as u32;
        let state_bytes = routing_agent_state_bytes(self.config.history_size);
        for (i, (agent, &choice)) in self.agents.iter_mut().zip(pending).enumerate() {
            let prev = agent.at;
            let moved = match choice {
                Some(target) if target != prev => {
                    agent.at = target;
                    self.overhead.migrations += 1;
                    self.overhead.migrated_bytes += state_bytes;
                    if self.config.trace_capacity > 0 {
                        self.trace.record(TraceEvent::Moved {
                            agent: AgentId::new(i),
                            from: prev,
                            to: target,
                            at: now,
                        });
                    }
                    true
                }
                _ => false,
            };
            agent.memory.record(agent.at, now);
            if self.is_gateway.get(agent.at.index()).copied().unwrap_or(false) {
                // Standing on a gateway resets the claim to zero hops.
                agent.carried = Some(Carried { gateway: agent.at, hops: 0 });
                continue;
            }
            if !moved {
                continue;
            }
            match &mut agent.carried {
                Some(c) if c.hops < history => {
                    c.hops += 1;
                    if let Some(table) = self.tables.get_mut(agent.at.index()) {
                        table.install(RouteEntry::new(c.gateway, prev, c.hops, now));
                    }
                    self.route_index.mark_dirty(agent.at);
                    self.overhead.table_writes += 1;
                    if self.config.trace_capacity > 0 {
                        self.trace.record(TraceEvent::TableWrite {
                            node: agent.at,
                            gateway: c.gateway,
                            next_hop: prev,
                            hops: c.hops,
                            at: now,
                        });
                    }
                }
                Some(_) => {
                    // The gateway visit fell out of the bounded history;
                    // the claim is forgotten.
                    agent.carried = None;
                }
                None => {}
            }
        }
    }
}

impl TimeStepSim for RoutingSim {
    fn step(&mut self, now: Step) {
        // The world changes first: nodes move, batteries decay.
        self.net.advance();

        if self.config.communication && self.config.share_before_decide {
            self.share(now);
        }
        self.decide(now);
        if self.config.communication && !self.config.share_before_decide {
            self.share(now);
        }
        let pending = std::mem::take(&mut self.pending);
        self.move_and_update(&pending, now);
        self.pending = pending;

        // Revalidate routes from deltas: table writes dirtied their nodes
        // above, and a topology-version bump forces the full resync.
        self.route_index.refresh(
            &self.tables,
            self.net.links(),
            &self.is_gateway,
            self.net.topology_version(),
        );
        let c = self.route_index.connected_fraction(&self.live_gateways);
        self.connectivity.record(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_radio::NetworkBuilder;

    fn small_net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed).unwrap()
    }

    fn static_net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(40)
            .gateways(3)
            .target_edges(320)
            .mobile_fraction(0.0)
            .build(seed)
            .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let net = small_net(1);
        assert!(
            RoutingSim::new(net.clone(), RoutingConfig::new(RoutingPolicy::Random, 0), 1).is_err()
        );
        assert!(RoutingSim::new(
            net.clone(),
            RoutingConfig::new(RoutingPolicy::Random, 1).history_size(0),
            1
        )
        .is_err());
        assert!(RoutingSim::new(
            net,
            RoutingConfig::new(RoutingPolicy::Random, 1).footprint_capacity(0),
            1
        )
        .is_err());
        let no_gw = NetworkBuilder::new(10).build(1).unwrap();
        assert!(RoutingSim::new(no_gw, RoutingConfig::new(RoutingPolicy::Random, 1), 1).is_err());
    }

    #[test]
    fn connectivity_starts_near_zero_and_rises() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 20);
        let mut sim = RoutingSim::new(small_net(2), cfg, 7).unwrap();
        let out = sim.run(120);
        let first = out.connectivity.values()[0];
        let late = out.mean_connectivity(80..120).unwrap();
        assert!(first < 0.5, "connectivity started too high: {first}");
        assert!(late > first, "connectivity never rose: {first} -> {late}");
        assert!(late > 0.3, "late connectivity too low: {late}");
    }

    #[test]
    fn gateways_always_count_connected() {
        let cfg = RoutingConfig::new(RoutingPolicy::Random, 1);
        let net = small_net(3);
        let gw = net.gateways().len();
        let n = net.node_count();
        let mut sim = RoutingSim::new(net, cfg, 1).unwrap();
        sim.step(Step::ZERO);
        assert!(sim.connectivity() >= gw as f64 / n as f64 - 1e-12);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 10).communication(true);
        let a = RoutingSim::new(small_net(4), cfg.clone(), 5).unwrap().run(60);
        let b = RoutingSim::new(small_net(4), cfg.clone(), 5).unwrap().run(60);
        assert_eq!(a, b);
        let c = RoutingSim::new(small_net(4), cfg, 6).unwrap().run(60);
        assert_ne!(a, c);
    }

    #[test]
    fn agents_move_along_live_links_on_static_net() {
        let net = static_net(5);
        let links = net.links().clone();
        let cfg = RoutingConfig::new(RoutingPolicy::Random, 8);
        let mut sim = RoutingSim::new(net, cfg, 2).unwrap();
        let before = sim.positions();
        sim.step(Step::ZERO);
        let after = sim.positions();
        for (b, a) in before.iter().zip(&after) {
            assert!(b == a || links.has_edge(*b, *a), "illegal hop {b} -> {a}");
        }
    }

    #[test]
    fn installed_entries_reference_gateways_and_neighbors() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 15);
        let mut sim = RoutingSim::new(static_net(6), cfg, 3).unwrap();
        let gws: std::collections::HashSet<NodeId> =
            sim.network().gateways().iter().copied().collect();
        for s in 0..50 {
            sim.step(Step::new(s));
        }
        let mut installed = 0;
        for i in 0..sim.network().node_count() {
            for e in sim.table(NodeId::new(i)).entries() {
                assert!(gws.contains(&e.gateway));
                assert!(e.hops >= 1);
                assert_ne!(e.next_hop, NodeId::new(i));
                installed += 1;
            }
        }
        assert!(installed > 0, "no entries were installed in 50 steps");
    }

    #[test]
    fn history_size_bounds_hop_claims() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 10).history_size(5);
        let mut sim = RoutingSim::new(static_net(8), cfg, 9).unwrap();
        for s in 0..80 {
            sim.step(Step::new(s));
        }
        for i in 0..sim.network().node_count() {
            for e in sim.table(NodeId::new(i)).entries() {
                assert!(e.hops <= 5, "claim exceeds history: {}", e.hops);
            }
        }
    }

    #[test]
    fn communication_makes_meeting_agents_identical() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 2).communication(true);
        let mut sim = RoutingSim::new(static_net(7), cfg, 4).unwrap();
        // Force a meeting on a non-gateway node with distinct knowledge.
        let spot = (0..sim.network().node_count())
            .map(NodeId::new)
            .find(|n| !sim.is_gateway[n.index()])
            .unwrap();
        sim.agents[0].at = spot;
        sim.agents[0].carried = Some(Carried { gateway: sim.network().gateways()[0], hops: 7 });
        sim.agents[1].at = spot;
        sim.agents[1].carried = Some(Carried { gateway: sim.network().gateways()[1], hops: 3 });
        sim.share(Step::new(1));
        assert_eq!(sim.agents[0].carried, sim.agents[1].carried);
        assert_eq!(sim.agents[0].carried.unwrap().hops, 3);
        assert_eq!(sim.agents[0].memory, sim.agents[1].memory);
    }

    #[test]
    fn chain_validation_requires_live_links() {
        // Hand-build: 0 (gateway) <- 1 <- 2 with entries, then verify
        // connectivity counts all three; breaking the 1->0 link on the
        // table side (wrong next hop) invalidates the chain.
        let net = static_net(10);
        let cfg = RoutingConfig::new(RoutingPolicy::Random, 1);
        let mut sim = RoutingSim::new(net, cfg, 1).unwrap();
        let gw = sim.network().gateways()[0];
        // Find a neighbour chain gw <- a <- b on live links.
        let links = sim.network().links().clone();
        let a = *links.in_neighbors(gw).iter().find(|&&v| !sim.is_gateway[v.index()]).unwrap();
        let b = *links
            .in_neighbors(a)
            .iter()
            .find(|&&v| v != gw && !sim.is_gateway[v.index()])
            .unwrap();
        sim.tables[a.index()].install(RouteEntry::new(gw, gw, 1, Step::ZERO));
        sim.tables[b.index()].install(RouteEntry::new(gw, a, 2, Step::ZERO));
        let base = sim.network().gateways().len() as f64;
        let n = sim.network().node_count() as f64;
        assert!((sim.connectivity() - (base + 2.0) / n).abs() < 1e-12);
        // Point b's entry at a dead neighbour: chain collapses to a only.
        sim.tables[b.index()].install(RouteEntry::new(gw, b, 2, Step::ZERO));
        assert!((sim.connectivity() - (base + 1.0) / n).abs() < 1e-12);
    }

    #[test]
    fn overhead_counters_accumulate() {
        let cfg =
            RoutingConfig::new(RoutingPolicy::OldestNode, 10).communication(true).stigmergic(true);
        let mut sim = RoutingSim::new(static_net(12), cfg, 3).unwrap();
        for s in 0..40 {
            sim.step(Step::new(s));
        }
        let o = sim.overhead();
        assert!(o.migrations > 0);
        assert!(o.migrated_bytes >= o.migrations); // at least a byte per hop
        assert!(o.footprint_writes > 0);
        assert!(o.table_writes > 0);
        // Every table write requires a migration with a live claim.
        assert!(o.table_writes <= o.migrations);
    }

    #[test]
    fn stigmergy_adds_only_footprint_overhead() {
        let base = RoutingConfig::new(RoutingPolicy::Random, 10);
        let mut plain = RoutingSim::new(static_net(12), base.clone(), 3).unwrap();
        let mut stig = RoutingSim::new(static_net(12), base.stigmergic(true), 3).unwrap();
        for s in 0..30 {
            plain.step(Step::new(s));
            stig.step(Step::new(s));
        }
        assert_eq!(plain.overhead().meeting_messages, 0);
        assert_eq!(plain.overhead().footprint_writes, 0);
        assert!(stig.overhead().footprint_writes > 0);
        // Footprints never add migration weight: bytes per hop identical.
        assert_eq!(plain.overhead().bytes_per_migration(), stig.overhead().bytes_per_migration());
    }

    #[test]
    fn failed_gateway_stops_counting_as_exit() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 15);
        let mut sim = RoutingSim::new(static_net(16), cfg, 3).unwrap();
        for s in 0..60 {
            sim.step(Step::new(s));
        }
        let before = sim.connectivity();
        let victim = sim.network().gateways()[0];
        assert!(sim.fail_gateway(victim));
        assert!(!sim.fail_gateway(victim), "double-fail must report false");
        assert_eq!(sim.live_gateways().len(), sim.network().gateways().len() - 1);
        let after = sim.connectivity();
        assert!(after <= before, "losing an exit cannot help: {before} -> {after}");
    }

    #[test]
    fn agents_stop_claiming_failed_gateways() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 15);
        let mut sim = RoutingSim::new(static_net(17), cfg, 4).unwrap();
        let victims: Vec<NodeId> = sim.network().gateways().to_vec();
        for v in &victims {
            sim.fail_gateway(*v);
        }
        for s in 0..30 {
            sim.step(Step::new(s));
        }
        // With every uplink dead, nothing should validate.
        assert_eq!(sim.connectivity(), 0.0);
    }

    #[test]
    fn trace_records_expected_event_kinds() {
        use crate::trace::TraceEvent;
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 8)
            .communication(true)
            .stigmergic(true)
            .trace_capacity(10_000);
        let mut sim = RoutingSim::new(static_net(14), cfg, 3).unwrap();
        for s in 0..30 {
            sim.step(Step::new(s));
        }
        let trace = sim.trace();
        assert!(trace.total_recorded() > 0);
        let mut moved = 0u64;
        let mut table = 0u64;
        let mut footprints = 0u64;
        for e in trace.events() {
            match e {
                TraceEvent::Moved { .. } => moved += 1,
                TraceEvent::TableWrite { .. } => table += 1,
                TraceEvent::Footprint { .. } => footprints += 1,
                TraceEvent::Meeting { .. } => {}
            }
        }
        assert!(moved > 0, "no moves traced");
        assert!(table > 0, "no table writes traced");
        assert!(footprints > 0, "no footprints traced");
        // Counters and trace agree when the ring never evicted.
        let o = sim.overhead();
        assert_eq!(moved, o.migrations);
        assert_eq!(table, o.table_writes);
        assert_eq!(footprints, o.footprint_writes);
    }

    #[test]
    fn tracing_off_by_default_costs_nothing() {
        let cfg = RoutingConfig::new(RoutingPolicy::Random, 5);
        let mut sim = RoutingSim::new(static_net(15), cfg, 2).unwrap();
        sim.step(Step::ZERO);
        assert_eq!(sim.trace().total_recorded(), 0);
        assert!(sim.trace().is_empty());
    }

    #[test]
    fn stigmergic_routing_runs_and_differs() {
        let base = RoutingConfig::new(RoutingPolicy::OldestNode, 12);
        let plain = RoutingSim::new(small_net(9), base.clone(), 3).unwrap().run(80);
        let stig = RoutingSim::new(small_net(9), base.stigmergic(true), 3).unwrap().run(80);
        assert_ne!(plain, stig, "stigmergy had no effect at all");
    }

    #[test]
    fn incremental_connectivity_matches_reference_every_step() {
        // Mobile network, communication on: topology churn exercises the
        // full-resync path, table writes the incremental path. The
        // recorded series must be bit-identical to the from-scratch
        // reference after every step.
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 20).communication(true);
        let mut sim = RoutingSim::new(small_net(2), cfg, 7).unwrap();
        for s in 0..80 {
            sim.step(Step::new(s));
            let recorded = *sim.connectivity_series().values().last().unwrap();
            assert_eq!(recorded, sim.connectivity(), "index diverged at step {s}");
        }
    }

    #[test]
    fn incremental_connectivity_tracks_gateway_failure() {
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 15);
        let mut sim = RoutingSim::new(static_net(16), cfg, 3).unwrap();
        for s in 0..40 {
            sim.step(Step::new(s));
        }
        sim.fail_gateway(sim.network().gateways()[0]);
        for s in 40..60 {
            sim.step(Step::new(s));
            let recorded = *sim.connectivity_series().values().last().unwrap();
            assert_eq!(recorded, sim.connectivity(), "index diverged at step {s}");
        }
    }

    #[test]
    fn eviction_after_boundary_exchange_does_not_panic() {
        // Entries installed late in a run carry stamps ahead of an
        // earlier observer's clock (a co-located exchange at a step
        // boundary). Aging and evicting against that earlier clock must
        // saturate to age 0, not panic in `Step::since`.
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 10).communication(true);
        let mut sim = RoutingSim::new(static_net(6), cfg, 3).unwrap();
        for s in 0..12 {
            sim.step(Step::new(s));
        }
        let mut future_stamped = 0usize;
        for i in 0..sim.network().node_count() {
            for e in sim.table(NodeId::new(i)).entries() {
                if e.installed_at > Step::new(5) {
                    future_stamped += 1;
                    assert_eq!(e.age(Step::new(5)), 0);
                }
            }
            sim.tables[i].evict_older_than(Step::new(5), 1_000);
        }
        assert!(future_stamped > 0, "no future-stamped entries; test is vacuous");
    }

    #[test]
    fn share_before_decide_ablation_changes_dynamics() {
        let base = RoutingConfig::new(RoutingPolicy::OldestNode, 15).communication(true);
        let a = RoutingSim::new(small_net(10), base.clone(), 3).unwrap().run(80);
        let b = RoutingSim::new(small_net(10), base.share_before_decide(true), 3).unwrap().run(80);
        assert_ne!(a, b);
    }
}
