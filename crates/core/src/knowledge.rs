//! Agent knowledge stores for the mapping task.
//!
//! A mapping agent accumulates two kinds of information (paper §II):
//! *first-hand* knowledge it experienced itself and *second-hand*
//! knowledge learned from peers. The edge map ([`EdgeSet`]) is the thing
//! being built; visit times ([`VisitTimes`]) drive the conscientious /
//! super-conscientious movement policies.

use agentnet_engine::Step;
use agentnet_graph::NodeId;
use serde::{Deserialize, Serialize};

/// A dense set of directed edges over `n` nodes, stored as a bitset
/// (`n²` bits), sized for the paper's 300-node networks.
///
/// ```
/// use agentnet_core::knowledge::EdgeSet;
/// use agentnet_graph::NodeId;
///
/// let mut s = EdgeSet::new(4);
/// assert!(s.insert(NodeId::new(0), NodeId::new(2)));
/// assert!(!s.insert(NodeId::new(0), NodeId::new(2))); // already known
/// assert!(s.contains(NodeId::new(0), NodeId::new(2)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeSet {
    n: usize,
    bits: Vec<u64>,
    count: usize,
}

impl EdgeSet {
    /// Creates an empty edge set over `n` nodes.
    pub fn new(n: usize) -> Self {
        let words = (n * n).div_ceil(64);
        EdgeSet { n, bits: vec![0; words], count: 0 }
    }

    /// Number of nodes this set is defined over.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of known edges.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no edges are known.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    fn bit_index(&self, from: NodeId, to: NodeId) -> usize {
        debug_assert!(from.index() < self.n && to.index() < self.n, "edge endpoint out of range");
        from.index() * self.n + to.index()
    }

    /// Records the edge `from -> to`; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an endpoint is out of range.
    pub fn insert(&mut self, from: NodeId, to: NodeId) -> bool {
        let i = self.bit_index(from, to);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Returns `true` if the edge is known.
    pub fn contains(&self, from: NodeId, to: NodeId) -> bool {
        let i = self.bit_index(from, to);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Replaces everything known about `from`'s out-edges with `targets`
    /// — the first-hand refresh an agent performs when standing on
    /// `from`: stale links that no longer exist are unlearned, current
    /// ones learned.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an endpoint is out of range.
    pub fn replace_row(&mut self, from: NodeId, targets: &[NodeId]) {
        // Clear the row.
        let row_start = from.index() * self.n;
        for bit in row_start..row_start + self.n {
            let (word, mask) = (bit / 64, 1u64 << (bit % 64));
            if self.bits[word] & mask != 0 {
                self.bits[word] &= !mask;
                self.count -= 1;
            }
        }
        for &t in targets {
            self.insert(from, t);
        }
    }

    /// Number of known edges that exist in `graph` (true positives).
    pub fn intersection_count(&self, graph: &agentnet_graph::DiGraph) -> usize {
        graph.edges().filter(|e| self.contains(e.from, e.to)).count()
    }

    /// Number of known edges that do **not** exist in `graph` (stale
    /// knowledge a packet would trip over).
    pub fn stale_count(&self, graph: &agentnet_graph::DiGraph) -> usize {
        self.count - self.intersection_count(graph)
    }

    /// Merges every edge known by `other` into `self` (the second-hand
    /// learning step of a meeting).
    ///
    /// # Panics
    ///
    /// Panics if the two sets cover different node counts.
    pub fn merge(&mut self, other: &EdgeSet) {
        assert_eq!(self.n, other.n, "cannot merge edge sets over different node counts");
        let mut count = 0usize;
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
            count += a.count_ones() as usize;
        }
        self.count = count;
    }

    /// Fraction of `total_edges` known, clamped to `[0, 1]`; the paper's
    /// "knowledge" axis. Returns 1.0 when `total_edges` is zero.
    pub fn knowledge_fraction(&self, total_edges: usize) -> f64 {
        if total_edges == 0 {
            1.0
        } else {
            (self.count as f64 / total_edges as f64).min(1.0)
        }
    }
}

/// Per-node last-visit times (`None` = never visited / never heard of a
/// visit). Merging takes the element-wise most recent time.
///
/// ```
/// use agentnet_core::knowledge::VisitTimes;
/// use agentnet_engine::Step;
/// use agentnet_graph::NodeId;
///
/// let mut v = VisitTimes::new(3);
/// v.record(NodeId::new(1), Step::new(5));
/// assert_eq!(v.last_visit(NodeId::new(1)), Some(Step::new(5)));
/// assert_eq!(v.last_visit(NodeId::new(0)), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitTimes {
    times: Vec<Option<Step>>,
}

impl VisitTimes {
    /// Creates a table over `n` nodes with no recorded visits.
    pub fn new(n: usize) -> Self {
        VisitTimes { times: vec![None; n] }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.times.len()
    }

    /// Records a visit of `node` at `when` (keeps the most recent).
    pub fn record(&mut self, node: NodeId, when: Step) {
        let slot = &mut self.times[node.index()];
        *slot = Some(slot.map_or(when, |t| t.max(when)));
    }

    /// The most recent known visit of `node`.
    pub fn last_visit(&self, node: NodeId) -> Option<Step> {
        self.times[node.index()]
    }

    /// Returns `true` if a visit of `node` is known.
    pub fn visited(&self, node: NodeId) -> bool {
        self.times[node.index()].is_some()
    }

    /// Number of nodes with a known visit.
    pub fn visited_count(&self) -> usize {
        self.times.iter().filter(|t| t.is_some()).count()
    }

    /// Order-stable digest of the table contents, used as the
    /// decision seed for hashed tie-breaking: agents with identical visit
    /// knowledge produce identical digests and therefore identical
    /// choices.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xA076_1D64_78BD_642Fu64;
        for (i, t) in self.times.iter().enumerate() {
            if let Some(t) = t {
                h = crate::policy::mix64(h ^ (i as u64) ^ t.as_u64().rotate_left(17));
            }
        }
        h
    }

    /// Element-wise most-recent merge (second-hand visit information).
    ///
    /// # Panics
    ///
    /// Panics if the two tables cover different node counts.
    pub fn merge(&mut self, other: &VisitTimes) {
        assert_eq!(
            self.times.len(),
            other.times.len(),
            "cannot merge visit tables over different node counts"
        );
        for (a, &b) in self.times.iter_mut().zip(&other.times) {
            *a = match (*a, b) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_graph::DiGraph;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn replace_row_unlearns_stale_edges() {
        let mut s = EdgeSet::new(5);
        s.insert(n(1), n(2));
        s.insert(n(1), n(3));
        s.insert(n(2), n(0)); // other rows untouched
        s.replace_row(n(1), &[n(3), n(4)]);
        assert!(!s.contains(n(1), n(2)));
        assert!(s.contains(n(1), n(3)));
        assert!(s.contains(n(1), n(4)));
        assert!(s.contains(n(2), n(0)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn replace_row_with_empty_clears_row() {
        let mut s = EdgeSet::new(4);
        s.insert(n(0), n(1));
        s.insert(n(0), n(2));
        s.replace_row(n(0), &[]);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn intersection_and_stale_counts() {
        let g = DiGraph::from_edges(4, [(n(0), n(1)), (n(1), n(2))]).unwrap();
        let mut s = EdgeSet::new(4);
        s.insert(n(0), n(1)); // true
        s.insert(n(2), n(3)); // stale
        assert_eq!(s.intersection_count(&g), 1);
        assert_eq!(s.stale_count(&g), 1);
    }

    #[test]
    fn edge_set_insert_and_contains() {
        let mut s = EdgeSet::new(10);
        assert!(!s.contains(n(3), n(7)));
        assert!(s.insert(n(3), n(7)));
        assert!(s.contains(n(3), n(7)));
        assert!(!s.contains(n(7), n(3)), "direction matters");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edge_set_duplicate_insert_is_noop() {
        let mut s = EdgeSet::new(4);
        assert!(s.insert(n(1), n(2)));
        assert!(!s.insert(n(1), n(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edge_set_merge_unions() {
        let mut a = EdgeSet::new(5);
        a.insert(n(0), n(1));
        a.insert(n(1), n(2));
        let mut b = EdgeSet::new(5);
        b.insert(n(1), n(2));
        b.insert(n(4), n(0));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(n(4), n(0)));
    }

    #[test]
    fn edge_set_covers_last_bit() {
        // Exercise the highest bit index (n²-1).
        let mut s = EdgeSet::new(9);
        assert!(s.insert(n(8), n(8 - 1)));
        let _ = s.insert(n(8), n(8)); // self edge allowed in set
        assert!(s.contains(n(8), n(7)));
    }

    #[test]
    fn knowledge_fraction_clamps() {
        let mut s = EdgeSet::new(3);
        s.insert(n(0), n(1));
        s.insert(n(1), n(2));
        assert!((s.knowledge_fraction(4) - 0.5).abs() < 1e-12);
        assert_eq!(s.knowledge_fraction(1), 1.0);
        assert_eq!(s.knowledge_fraction(0), 1.0);
        assert_eq!(EdgeSet::new(3).knowledge_fraction(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "different node counts")]
    fn edge_set_merge_size_mismatch_panics() {
        let mut a = EdgeSet::new(3);
        a.merge(&EdgeSet::new(4));
    }

    #[test]
    fn visit_times_record_keeps_latest() {
        let mut v = VisitTimes::new(2);
        v.record(n(0), Step::new(5));
        v.record(n(0), Step::new(3)); // older report must not regress
        assert_eq!(v.last_visit(n(0)), Some(Step::new(5)));
        v.record(n(0), Step::new(9));
        assert_eq!(v.last_visit(n(0)), Some(Step::new(9)));
    }

    #[test]
    fn visit_times_merge_takes_most_recent() {
        let mut a = VisitTimes::new(3);
        a.record(n(0), Step::new(2));
        a.record(n(1), Step::new(8));
        let mut b = VisitTimes::new(3);
        b.record(n(0), Step::new(5));
        b.record(n(2), Step::new(1));
        a.merge(&b);
        assert_eq!(a.last_visit(n(0)), Some(Step::new(5)));
        assert_eq!(a.last_visit(n(1)), Some(Step::new(8)));
        assert_eq!(a.last_visit(n(2)), Some(Step::new(1)));
    }

    #[test]
    fn visited_count_tracks_coverage() {
        let mut v = VisitTimes::new(4);
        assert_eq!(v.visited_count(), 0);
        v.record(n(2), Step::ZERO);
        v.record(n(2), Step::new(1));
        v.record(n(3), Step::ZERO);
        assert_eq!(v.visited_count(), 2);
        assert!(v.visited(n(2)));
        assert!(!v.visited(n(0)));
    }

    #[test]
    #[should_panic(expected = "different node counts")]
    fn visit_merge_size_mismatch_panics() {
        let mut a = VisitTimes::new(2);
        a.merge(&VisitTimes::new(3));
    }
}
