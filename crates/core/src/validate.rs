//! Simulation invariants for the mapping and routing studies.
//!
//! Each type here implements `agentnet_engine::invariant::Invariant` over
//! one of the two simulations; [`mapping_invariants`] and
//! [`routing_invariants`] bundle the standard sets that
//! [`crate::mapping::MappingSim::run_checked`] and
//! [`crate::routing::RoutingSim::run_checked`] thread through every step.
//! The routing set also wraps the physical-layer checks from
//! `agentnet_radio::invariants` so a single checked run validates the
//! agent layer and the network substrate together.
//!
//! These predicates are deliberately *redundant* with what the
//! simulations promise: they re-derive bounds (footprint capacity, hop
//! caps, connectivity bracketing) from first principles so a modelling
//! regression that shifts a statistic without failing a unit test still
//! trips a checked run.

use crate::mapping::MappingSim;
use crate::routing::RoutingSim;
use agentnet_engine::invariant::{Invariant, InvariantSet};
use agentnet_engine::sim::{Step, TimeStepSim};
use agentnet_graph::connectivity::fraction_reaching;
use agentnet_graph::NodeId;
use agentnet_radio::invariants::{BatteryMonotone, LinksWellFormed, SymmetricWhenHomogeneous};
use agentnet_radio::WirelessNetwork;

/// Tolerance for floating-point fraction comparisons.
const EPS: f64 = 1e-9;

// ---------------------------------------------------------------------------
// Mapping invariants
// ---------------------------------------------------------------------------

/// Footprint boards cover exactly the node set and never hold more
/// imprints than the configured capacity.
#[derive(Debug, Default)]
pub struct MappingFootprintCapacity;

impl Invariant<MappingSim> for MappingFootprintCapacity {
    fn name(&self) -> &'static str {
        "mapping-footprint-capacity"
    }

    fn check(&mut self, sim: &MappingSim, _now: Step) -> Result<(), String> {
        let n = sim.graph().node_count();
        let boards = sim.boards();
        if boards.len() != n {
            return Err(format!("{} boards for {n} nodes", boards.len()));
        }
        let cap = sim.config().footprint_capacity;
        for (i, board) in boards.iter().enumerate() {
            if board.len() > cap {
                return Err(format!("board {i} holds {} footprints, capacity {cap}", board.len()));
            }
        }
        Ok(())
    }
}

/// Per-agent visit counts only grow: nodes visited first-hand and nodes
/// known through merges are both monotone, merged knowledge dominates
/// first-hand knowledge, and neither exceeds the node count.
#[derive(Debug, Default)]
pub struct MappingVisitMonotone {
    prev: Vec<(usize, usize)>,
}

impl Invariant<MappingSim> for MappingVisitMonotone {
    fn name(&self) -> &'static str {
        "mapping-visit-monotone"
    }

    fn check(&mut self, sim: &MappingSim, _now: Step) -> Result<(), String> {
        let n = sim.graph().node_count();
        let first = sim.first_visited_counts();
        let merged = sim.merged_visited_counts();
        let primed = self.prev.len() == first.len();
        for i in 0..first.len() {
            if merged[i] > n {
                return Err(format!("agent {i} knows {} of {n} nodes", merged[i]));
            }
            if merged[i] < first[i] {
                return Err(format!(
                    "agent {i} merged count {} below first-hand count {}",
                    merged[i], first[i]
                ));
            }
            if primed && (first[i] < self.prev[i].0 || merged[i] < self.prev[i].1) {
                return Err(format!(
                    "agent {i} visit counts shrank ({:?} -> ({}, {}))",
                    self.prev[i], first[i], merged[i]
                ));
            }
        }
        self.prev = first.into_iter().zip(merged).collect();
        Ok(())
    }
}

/// On a static topology, mean knowledge is a valid fraction and never
/// decreases. Once [`MappingSim::set_graph`] has drifted the topology,
/// stale knowledge may legitimately be unlearned, so nothing is asserted.
#[derive(Debug, Default)]
pub struct MappingKnowledgeMonotone {
    prev: Option<f64>,
}

impl Invariant<MappingSim> for MappingKnowledgeMonotone {
    fn name(&self) -> &'static str {
        "mapping-knowledge-monotone"
    }

    fn check(&mut self, sim: &MappingSim, _now: Step) -> Result<(), String> {
        if sim.graph_changed() {
            self.prev = None;
            return Ok(());
        }
        let k = sim.mean_knowledge();
        if !(0.0..=1.0 + EPS).contains(&k) {
            return Err(format!("mean knowledge {k} outside [0, 1]"));
        }
        if let Some(prev) = self.prev {
            if k < prev - EPS {
                return Err(format!("mean knowledge fell {prev} -> {k} on a static graph"));
            }
        }
        self.prev = Some(k);
        Ok(())
    }
}

/// Per-agent knowledge fractions are non-negative (and at most 1 while
/// the topology is static), and the worst agent never beats the mean.
#[derive(Debug, Default)]
pub struct MappingKnowledgeBounds;

impl Invariant<MappingSim> for MappingKnowledgeBounds {
    fn name(&self) -> &'static str {
        "mapping-knowledge-bounds"
    }

    fn check(&mut self, sim: &MappingSim, _now: Step) -> Result<(), String> {
        for (i, k) in sim.per_agent_knowledge().into_iter().enumerate() {
            if k < -EPS {
                return Err(format!("agent {i} knowledge {k} is negative"));
            }
            if !sim.graph_changed() && k > 1.0 + EPS {
                return Err(format!("agent {i} knowledge {k} above 1 on a static graph"));
            }
        }
        let (min, mean) = (sim.min_knowledge(), sim.mean_knowledge());
        if min > mean + EPS {
            return Err(format!("min knowledge {min} exceeds mean {mean}"));
        }
        Ok(())
    }
}

/// Agents only teleport along edges: between consecutive steps each agent
/// either stayed put or moved across an edge of the *current* graph
/// (moves are decided from the live topology, so this holds across
/// [`MappingSim::set_graph`] drifts too).
#[derive(Debug, Default)]
pub struct MappingMovesOnEdges {
    prev: Option<Vec<NodeId>>,
}

impl Invariant<MappingSim> for MappingMovesOnEdges {
    fn name(&self) -> &'static str {
        "mapping-moves-on-edges"
    }

    fn check(&mut self, sim: &MappingSim, _now: Step) -> Result<(), String> {
        let pos = sim.positions();
        let n = sim.graph().node_count();
        for (i, p) in pos.iter().enumerate() {
            if p.index() >= n {
                return Err(format!("agent {i} at out-of-range node {p}"));
            }
        }
        if let Some(prev) = &self.prev {
            for (i, (b, a)) in prev.iter().zip(&pos).enumerate() {
                if b != a && !sim.graph().has_edge(*b, *a) {
                    return Err(format!("agent {i} teleported {b} -> {a}"));
                }
            }
        }
        self.prev = Some(pos);
        Ok(())
    }
}

/// The completion count agrees with the per-agent knowledge fractions
/// (on a static topology) and with [`TimeStepSim::is_done`].
#[derive(Debug, Default)]
pub struct MappingCompletionConsistent;

impl Invariant<MappingSim> for MappingCompletionConsistent {
    fn name(&self) -> &'static str {
        "mapping-completion-consistent"
    }

    fn check(&mut self, sim: &MappingSim, _now: Step) -> Result<(), String> {
        let complete = sim.complete_agent_count();
        let population = sim.config().population;
        if complete > population {
            return Err(format!("{complete} complete agents out of {population}"));
        }
        if sim.is_done() != (complete == population) {
            return Err(format!(
                "is_done ({}) disagrees with completion count {complete}/{population}",
                sim.is_done()
            ));
        }
        if !sim.graph_changed() {
            let by_knowledge =
                sim.per_agent_knowledge().iter().filter(|&&k| k >= 1.0 - 1e-12).count();
            if by_knowledge != complete {
                return Err(format!(
                    "{by_knowledge} agents hold full knowledge but {complete} are marked complete"
                ));
            }
        }
        Ok(())
    }
}

/// The mapped topology's adjacency structure stays internally consistent
/// (sorted lists, mirrored in/out edges, exact edge count).
#[derive(Debug, Default)]
pub struct MappingGraphConsistent;

impl Invariant<MappingSim> for MappingGraphConsistent {
    fn name(&self) -> &'static str {
        "graph-adjacency-consistent"
    }

    fn check(&mut self, sim: &MappingSim, _now: Step) -> Result<(), String> {
        sim.graph().check_consistency()
    }
}

/// The standard invariant set over a mapping simulation.
pub fn mapping_invariants() -> InvariantSet<MappingSim> {
    let mut set = InvariantSet::new();
    set.register(MappingFootprintCapacity);
    set.register(MappingVisitMonotone::default());
    set.register(MappingKnowledgeMonotone::default());
    set.register(MappingKnowledgeBounds);
    set.register(MappingMovesOnEdges::default());
    set.register(MappingCompletionConsistent);
    set.register(MappingGraphConsistent);
    set
}

// ---------------------------------------------------------------------------
// Routing invariants
// ---------------------------------------------------------------------------

/// Every routing-table entry is well-formed: hop claims respect the
/// bounded history, next hops are real neighbours (never the node
/// itself), gateways actually exist, and nothing is installed in the
/// future.
#[derive(Debug, Default)]
pub struct RoutingTableBounds;

impl Invariant<RoutingSim> for RoutingTableBounds {
    fn name(&self) -> &'static str {
        "routing-table-bounds"
    }

    fn check(&mut self, sim: &RoutingSim, now: Step) -> Result<(), String> {
        let net = sim.network();
        let n = net.node_count();
        let history = sim.config().history_size as u32;
        for v in (0..n).map(NodeId::new) {
            for e in sim.table(v).entries() {
                if e.hops < 1 || e.hops > history {
                    return Err(format!("entry at {v} claims {} hops, history {history}", e.hops));
                }
                if e.next_hop == v || e.next_hop.index() >= n {
                    return Err(format!("entry at {v} has invalid next hop {}", e.next_hop));
                }
                if !net.gateways().contains(&e.gateway) {
                    return Err(format!("entry at {v} targets non-gateway {}", e.gateway));
                }
                if e.installed_at > now {
                    return Err(format!(
                        "entry at {v} installed in the future ({} > {now})",
                        e.installed_at
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A routing entry installed *this* step points back across the directed
/// link its agent just traversed (`next_hop -> node`), which must still
/// be live — the network only advances at the start of a step. (Older
/// entries may legitimately reference links that churn has since broken;
/// chain validation handles those.)
#[derive(Debug, Default)]
pub struct RoutingFreshEntryLiveLink;

impl Invariant<RoutingSim> for RoutingFreshEntryLiveLink {
    fn name(&self) -> &'static str {
        "routing-fresh-entry-live-link"
    }

    fn check(&mut self, sim: &RoutingSim, now: Step) -> Result<(), String> {
        let links = sim.network().links();
        for v in (0..sim.network().node_count()).map(NodeId::new) {
            for e in sim.table(v).entries() {
                if e.installed_at == now && !links.has_edge(e.next_hop, v) {
                    return Err(format!(
                        "fresh entry at {v} points across dead link {} -> {v}",
                        e.next_hop
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Agent state stays within its configured bounds: positions are valid
/// nodes, visit memories are nonempty and capped by the history size,
/// carried route claims never exceed the history, and footprint boards
/// respect their capacity.
#[derive(Debug, Default)]
pub struct RoutingAgentState;

impl Invariant<RoutingSim> for RoutingAgentState {
    fn name(&self) -> &'static str {
        "routing-agent-state"
    }

    fn check(&mut self, sim: &RoutingSim, _now: Step) -> Result<(), String> {
        let n = sim.network().node_count();
        let history = sim.config().history_size;
        for (i, p) in sim.positions().into_iter().enumerate() {
            if p.index() >= n {
                return Err(format!("agent {i} at out-of-range node {p}"));
            }
        }
        for (i, len) in sim.memory_sizes().into_iter().enumerate() {
            if len == 0 || len > history {
                return Err(format!("agent {i} memory holds {len} visits, history {history}"));
            }
        }
        for (i, hops) in sim.carried_hops().into_iter().enumerate() {
            if let Some(h) = hops {
                if h > history as u32 {
                    return Err(format!("agent {i} carries a {h}-hop claim, history {history}"));
                }
            }
        }
        let cap = sim.config().footprint_capacity;
        let boards = sim.boards();
        if boards.len() != n {
            return Err(format!("{} boards for {n} nodes", boards.len()));
        }
        for (i, board) in boards.iter().enumerate() {
            if board.len() > cap {
                return Err(format!("board {i} holds {} footprints, capacity {cap}", board.len()));
            }
        }
        Ok(())
    }
}

/// Connectivity is bracketed from first principles: at least the live
/// gateways themselves count as connected, and no next-hop chain can do
/// better than raw link-graph reachability of a live gateway (the
/// forwarding graph is a subgraph of the link graph).
#[derive(Debug, Default)]
pub struct RoutingConnectivityBounds;

impl Invariant<RoutingSim> for RoutingConnectivityBounds {
    fn name(&self) -> &'static str {
        "routing-connectivity-bounds"
    }

    fn check(&mut self, sim: &RoutingSim, _now: Step) -> Result<(), String> {
        let n = sim.network().node_count() as f64;
        let live = sim.live_gateways();
        let c = sim.connectivity();
        let lower = live.len() as f64 / n;
        if c < lower - EPS {
            return Err(format!("connectivity {c} below gateway floor {lower}"));
        }
        let upper = fraction_reaching(sim.network().links(), live);
        if c > upper + EPS {
            return Err(format!("connectivity {c} above reachability ceiling {upper}"));
        }
        Ok(())
    }
}

/// Differential check of the incremental route index: the per-step
/// connectivity value recorded by the simulation comes from the
/// delta-maintained [`crate::routing::RouteIndex`]; it must be
/// bit-identical to the from-scratch [`RoutingSim::connectivity`]
/// reference, or the index missed an update.
#[derive(Debug, Default)]
pub struct RoutingIndexMatchesReference;

impl Invariant<RoutingSim> for RoutingIndexMatchesReference {
    fn name(&self) -> &'static str {
        "routing-index-matches-reference"
    }

    fn check(&mut self, sim: &RoutingSim, _now: Step) -> Result<(), String> {
        let Some(&recorded) = sim.connectivity_series().values().last() else {
            return Ok(());
        };
        let reference = sim.connectivity();
        if recorded != reference {
            return Err(format!(
                "incremental index recorded {recorded}, from-scratch reference {reference}"
            ));
        }
        Ok(())
    }
}

/// Adapts an invariant over the raw [`WirelessNetwork`] into one over a
/// [`RoutingSim`] by checking the simulation's network substrate.
struct OverNetwork<I>(I);

impl<I: Invariant<WirelessNetwork>> Invariant<RoutingSim> for OverNetwork<I> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn check(&mut self, sim: &RoutingSim, now: Step) -> Result<(), String> {
        self.0.check(sim.network(), now)
    }
}

/// The standard invariant set over a routing simulation: the five
/// agent-layer checks plus the physical-layer checks from
/// `agentnet_radio::invariants` applied to the underlying network.
pub fn routing_invariants() -> InvariantSet<RoutingSim> {
    let mut set = InvariantSet::new();
    set.register(RoutingTableBounds);
    set.register(RoutingFreshEntryLiveLink);
    set.register(RoutingAgentState);
    set.register(RoutingConnectivityBounds);
    set.register(RoutingIndexMatchesReference);
    set.register(OverNetwork(BatteryMonotone::new()));
    set.register(OverNetwork(LinksWellFormed));
    set.register(OverNetwork(SymmetricWhenHomogeneous));
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MappingConfig, MappingSim};
    use crate::policy::{MappingPolicy, RoutingPolicy};
    use crate::routing::{RoutingConfig, RoutingSim};
    use agentnet_graph::generators::{grid, GeometricConfig};
    use agentnet_radio::{BatteryModel, BatteryState, NetworkBuilder};

    #[test]
    fn mapping_invariants_hold_to_completion() {
        let g = GeometricConfig::new(30, 180).generate(5).unwrap().graph;
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 4).stigmergic(true);
        let mut sim = MappingSim::new(g, cfg, 7).unwrap();
        let mut checks = mapping_invariants();
        assert_eq!(checks.len(), 7);
        let out = sim.run_checked(200_000, &mut checks).expect("no violations");
        assert!(out.finished);
    }

    #[test]
    fn mapping_invariants_hold_across_topology_drift() {
        let g1 = grid(4, 4);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 4);
        let mut sim = MappingSim::new(g1.clone(), cfg, 8).unwrap();
        let mut checks = mapping_invariants();
        // Phase 1: static mapping under checks, driven manually so time
        // keeps advancing monotonically across the drift.
        let mut s = 0u64;
        while !sim.is_done() {
            sim.step(Step::new(s));
            checks.check_all(&sim, Step::new(s)).expect("static phase");
            s += 1;
            assert!(s < 10_000, "never finished the static phase");
        }
        // Drift: a link pair dies, a long link appears; re-map under the
        // same (stateful) checks.
        let mut g2 = g1.clone();
        g2.remove_edge(NodeId::new(0), NodeId::new(1));
        g2.remove_edge(NodeId::new(1), NodeId::new(0));
        g2.add_edge(NodeId::new(0), NodeId::new(5));
        g2.add_edge(NodeId::new(5), NodeId::new(0));
        sim.set_graph(g2);
        while !sim.is_done() {
            sim.step(Step::new(s));
            checks.check_all(&sim, Step::new(s)).expect("drifted phase");
            s += 1;
            assert!(s < 20_000, "never re-mapped the drifted topology");
        }
    }

    #[test]
    fn routing_invariants_hold_on_dynamic_network() {
        let net = NetworkBuilder::new(40).gateways(3).target_edges(320).build(2).unwrap();
        let cfg =
            RoutingConfig::new(RoutingPolicy::OldestNode, 12).communication(true).stigmergic(true);
        let mut sim = RoutingSim::new(net, cfg, 7).unwrap();
        let mut checks = routing_invariants();
        assert_eq!(checks.len(), 8);
        sim.run_checked(80, &mut checks).expect("no violations");
    }

    #[test]
    fn routing_invariants_hold_through_gateway_failure() {
        let net = NetworkBuilder::new(40)
            .gateways(3)
            .target_edges(320)
            .mobile_fraction(0.0)
            .build(16)
            .unwrap();
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 15);
        let mut sim = RoutingSim::new(net, cfg, 3).unwrap();
        let mut checks = routing_invariants();
        for s in 0..40 {
            sim.step(Step::new(s));
            checks.check_all(&sim, Step::new(s)).expect("pre-failure");
        }
        let victim = sim.network().gateways()[0];
        assert!(sim.fail_gateway(victim));
        for s in 40..80 {
            sim.step(Step::new(s));
            checks.check_all(&sim, Step::new(s)).expect("post-failure");
        }
    }

    #[test]
    fn recharged_battery_trips_the_wrapped_radio_invariant() {
        let net = NetworkBuilder::new(20).gateways(2).target_edges(120).build(5).unwrap();
        let cfg = RoutingConfig::new(RoutingPolicy::Random, 5);
        let mut sim = RoutingSim::new(net, cfg, 2).unwrap();
        let mut checks = routing_invariants();
        sim.step(Step::ZERO);
        checks.check_all(&sim, Step::ZERO).expect("baseline");
        let id = sim.network().nodes()[5].id;
        // Draining is a legal battery trajectory...
        sim.network_mut().node_mut(id).battery =
            BatteryState::with_charge(BatteryModel::Mains, 0.2);
        sim.step(Step::new(1));
        checks.check_all(&sim, Step::new(1)).expect("drain is legal");
        // ...recharging is not.
        sim.network_mut().node_mut(id).battery = BatteryState::mains();
        sim.step(Step::new(2));
        let violation = checks.check_all(&sim, Step::new(2)).unwrap_err();
        assert_eq!(violation.invariant, "radio-battery-monotone");
        assert_eq!(violation.at, Step::new(2));
        assert!(violation.message.contains("charge rose"), "{violation}");
    }

    #[test]
    fn invariant_names_are_distinct() {
        let mut names = mapping_invariants().names();
        names.extend(routing_invariants().names());
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate invariant names");
        assert!(total >= 8, "battery too small: {total}");
    }
}
