//! Shortest hop paths and hop-by-hop route validation.
//!
//! Routing agents install *explicit hop lists* into node routing tables; a
//! route is only useful while every hop is still a live directed link. The
//! validators here are the authoritative definition of "valid route" used by
//! the connectivity metric.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Shortest path (minimum hop count) from `from` to `to`, as the full node
/// sequence including both endpoints, or `None` if unreachable.
///
/// BFS with deterministic (sorted-neighbour) expansion, so equal-length
/// paths always resolve to the lexicographically smallest parent choice.
///
/// ```
/// use agentnet_graph::{DiGraph, NodeId, paths::shortest_path};
/// let n = NodeId::new;
/// let g = DiGraph::from_edges(4, [(n(0), n(1)), (n(1), n(3)), (n(0), n(2)), (n(2), n(3))])
///     .unwrap();
/// assert_eq!(shortest_path(&g, n(0), n(3)), Some(vec![n(0), n(1), n(3)]));
/// ```
pub fn shortest_path(graph: &DiGraph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from.index() >= graph.node_count() || to.index() >= graph.node_count() {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    parent[from.index()] = Some(from);
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in graph.out_neighbors(v) {
            if parent[w.index()].is_none() {
                parent[w.index()] = Some(v);
                if w == to {
                    let mut path = vec![w];
                    let mut cur = v;
                    while cur != from {
                        path.push(cur);
                        cur = parent[cur.index()].expect("parent chain broken");
                    }
                    path.push(from);
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Hop distance (number of edges) from `from` to `to`, or `None` if
/// unreachable.
pub fn hop_distance(graph: &DiGraph, from: NodeId, to: NodeId) -> Option<usize> {
    shortest_path(graph, from, to).map(|p| p.len() - 1)
}

/// Returns `true` if `path` is a currently-live directed walk in `graph`:
/// non-empty, every node in range, and every consecutive pair an existing
/// edge. A single-node path is valid iff the node is in range.
pub fn is_live_path(graph: &DiGraph, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    if path.iter().any(|v| v.index() >= graph.node_count()) {
        return false;
    }
    path.windows(2).all(|w| graph.has_edge(w[0], w[1]))
}

/// All-hops BFS distances from `start`; `usize::MAX` marks unreachable
/// nodes. Useful for eccentricity/diameter style diagnostics on generated
/// networks.
pub fn bfs_distances(graph: &DiGraph, start: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.node_count()];
    if start.index() >= graph.node_count() {
        return dist;
    }
    dist[start.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &w in graph.out_neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The directed diameter (longest shortest path) of the graph, or `None`
/// if some ordered pair is unreachable. `O(V·(V+E))`; intended for
/// diagnostics on generated topologies, not inner simulation loops.
pub fn diameter(graph: &DiGraph) -> Option<usize> {
    let mut best = 0usize;
    for v in graph.nodes() {
        let dist = bfs_distances(graph, v);
        for &d in &dist {
            if d == usize::MAX {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn shortest_path_trivial_same_node() {
        let g = DiGraph::new(2);
        assert_eq!(shortest_path(&g, n(1), n(1)), Some(vec![n(1)]));
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let g = DiGraph::from_edges(3, [(n(0), n(1))]).unwrap();
        assert_eq!(shortest_path(&g, n(1), n(0)), None);
        assert_eq!(shortest_path(&g, n(0), n(2)), None);
    }

    #[test]
    fn shortest_path_picks_minimum_hops() {
        // 0->1->2->3 and 0->3 direct
        let g = DiGraph::from_edges(4, [(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(0), n(3))])
            .unwrap();
        assert_eq!(shortest_path(&g, n(0), n(3)), Some(vec![n(0), n(3)]));
        assert_eq!(hop_distance(&g, n(0), n(3)), Some(1));
        assert_eq!(hop_distance(&g, n(0), n(2)), Some(2));
    }

    #[test]
    fn shortest_path_out_of_range_is_none() {
        let g = DiGraph::new(2);
        assert_eq!(shortest_path(&g, n(0), n(9)), None);
        assert_eq!(shortest_path(&g, n(9), n(0)), None);
    }

    #[test]
    fn live_path_checks_every_hop() {
        let mut g = DiGraph::from_edges(4, [(n(0), n(1)), (n(1), n(2)), (n(2), n(3))]).unwrap();
        let path = [n(0), n(1), n(2), n(3)];
        assert!(is_live_path(&g, &path));
        g.remove_edge(n(1), n(2));
        assert!(!is_live_path(&g, &path));
    }

    #[test]
    fn live_path_edge_cases() {
        let g = DiGraph::new(2);
        assert!(!is_live_path(&g, &[]));
        assert!(is_live_path(&g, &[n(1)]));
        assert!(!is_live_path(&g, &[n(5)]));
    }

    #[test]
    fn live_path_respects_direction() {
        let g = DiGraph::from_edges(2, [(n(0), n(1))]).unwrap();
        assert!(is_live_path(&g, &[n(0), n(1)]));
        assert!(!is_live_path(&g, &[n(1), n(0)]));
    }

    #[test]
    fn bfs_distances_marks_unreachable() {
        let g = DiGraph::from_edges(3, [(n(0), n(1))]).unwrap();
        let d = bfs_distances(&g, n(0));
        assert_eq!(d, vec![0, 1, usize::MAX]);
    }

    #[test]
    fn diameter_of_directed_ring() {
        let len = 5;
        let g = DiGraph::from_edges(len, (0..len).map(|i| (n(i), n((i + 1) % len)))).unwrap();
        assert_eq!(diameter(&g), Some(len - 1));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        assert_eq!(diameter(&DiGraph::new(2)), None);
    }
}
