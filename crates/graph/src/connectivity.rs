//! Connectivity queries: strongly connected components, reachability, and
//! the "reaches a gateway" primitive behind the paper's routing metric.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use crate::traversal::Bfs;

/// Computes the strongly connected components of `graph` using Tarjan's
/// algorithm (iterative, so deep graphs cannot overflow the stack).
///
/// Components are returned in reverse topological order of the condensation
/// (Tarjan's natural output order); every node appears in exactly one
/// component.
///
/// ```
/// use agentnet_graph::{DiGraph, NodeId, connectivity::strongly_connected_components};
/// let n = NodeId::new;
/// let g = DiGraph::from_edges(4, [(n(0), n(1)), (n(1), n(0)), (n(2), n(3))]).unwrap();
/// let sccs = strongly_connected_components(&g);
/// assert_eq!(sccs.len(), 3); // {0,1}, {2}, {3}
/// ```
pub fn strongly_connected_components(graph: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS call stack: (node, next-neighbour cursor).
    let mut call: Vec<(NodeId, usize)> = Vec::new();

    for root in graph.nodes() {
        if index[root.index()] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor == 0 {
                index[v.index()] = next_index;
                lowlink[v.index()] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v.index()] = true;
            }
            let neighbors = graph.out_neighbors(v);
            if *cursor < neighbors.len() {
                let w = neighbors[*cursor];
                *cursor += 1;
                if index[w.index()] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Returns `true` if every node can reach every other node following edge
/// direction.
///
/// The empty graph and the single-node graph are strongly connected by
/// convention.
///
/// ```
/// use agentnet_graph::{connectivity::is_strongly_connected, generators};
/// assert!(is_strongly_connected(&generators::directed_ring(5)));
/// assert!(!is_strongly_connected(&agentnet_graph::DiGraph::new(2)));
/// ```
pub fn is_strongly_connected(graph: &DiGraph) -> bool {
    let n = graph.node_count();
    if n <= 1 {
        return true;
    }
    // Cheaper than full SCC: forward + backward BFS from node 0.
    let start = NodeId::new(0);
    if Bfs::new(graph, start).count() != n {
        return false;
    }
    Bfs::new(&graph.reversed(), start).count() == n
}

/// Boolean reachability vector: `result[i]` is `true` iff node `i` is
/// reachable from `start` (including `start` itself).
pub fn reachable_set(graph: &DiGraph, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; graph.node_count()];
    for node in Bfs::new(graph, start) {
        seen[node.index()] = true;
    }
    seen
}

/// Returns, for every node, whether it can reach **at least one** of
/// `targets` following edge direction.
///
/// ```
/// use agentnet_graph::{DiGraph, NodeId, connectivity::reaches_any};
/// let n = NodeId::new;
/// let g = DiGraph::from_edges(3, [(n(0), n(1))]).unwrap();
/// assert_eq!(reaches_any(&g, &[n(1)]), vec![true, true, false]);
/// ```
///
/// This is the primitive behind the paper's connectivity measure: "the
/// fraction of nodes in the system that has a valid route to at least one
/// gateway". Implemented as a single multi-source BFS on the reversed graph,
/// so it costs `O(V + E)` regardless of the number of targets.
///
/// Targets out of range are ignored.
pub fn reaches_any(graph: &DiGraph, targets: &[NodeId]) -> Vec<bool> {
    let n = graph.node_count();
    let mut reached = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &t in targets {
        if t.index() < n && !reached[t.index()] {
            reached[t.index()] = true;
            queue.push_back(t);
        }
    }
    while let Some(v) = queue.pop_front() {
        // Walking in-neighbours of v == walking the reversed graph.
        for &u in graph.in_neighbors(v) {
            if !reached[u.index()] {
                reached[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    reached
}

/// Fraction of nodes (in `[0, 1]`) that can reach at least one target.
/// Returns 0 for an empty graph.
pub fn fraction_reaching(graph: &DiGraph, targets: &[NodeId]) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let hits = reaches_any(graph, targets).iter().filter(|&&b| b).count();
    crate::cast::fraction(hits, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ring(len: usize) -> DiGraph {
        DiGraph::from_edges(len, (0..len).map(|i| (n(i), n((i + 1) % len)))).unwrap()
    }

    #[test]
    fn ring_is_one_scc() {
        let sccs = strongly_connected_components(&ring(6));
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 6);
    }

    #[test]
    fn chain_is_all_singletons() {
        let g = DiGraph::from_edges(4, (0..3).map(|i| (n(i), n(i + 1)))).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_partition_covers_all_nodes_once() {
        let g = DiGraph::from_edges(
            6,
            [(n(0), n(1)), (n(1), n(0)), (n(1), n(2)), (n(2), n(3)), (n(3), n(2)), (n(4), n(5))],
        )
        .unwrap();
        let sccs = strongly_connected_components(&g);
        let mut all: Vec<_> = sccs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).map(n).collect::<Vec<_>>());
    }

    #[test]
    fn two_cycles_bridged_one_way_are_two_sccs() {
        let g = DiGraph::from_edges(
            4,
            [(n(0), n(1)), (n(1), n(0)), (n(2), n(3)), (n(3), n(2)), (n(1), n(2))],
        )
        .unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn ring_is_strongly_connected() {
        assert!(is_strongly_connected(&ring(10)));
    }

    #[test]
    fn trivial_graphs_are_strongly_connected() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert!(!is_strongly_connected(&DiGraph::new(2)));
    }

    #[test]
    fn reachable_set_respects_direction() {
        let g = DiGraph::from_edges(3, [(n(0), n(1))]).unwrap();
        let r = reachable_set(&g, n(0));
        assert_eq!(r, vec![true, true, false]);
        let r = reachable_set(&g, n(1));
        assert_eq!(r, vec![false, true, false]);
    }

    #[test]
    fn reaches_any_multi_target() {
        // 0 -> 1 -> 2 (gateway), 3 -> 4 (gateway), 5 isolated
        let g = DiGraph::from_edges(6, [(n(0), n(1)), (n(1), n(2)), (n(3), n(4))]).unwrap();
        let r = reaches_any(&g, &[n(2), n(4)]);
        assert_eq!(r, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn reaches_any_counts_gateways_themselves() {
        let g = DiGraph::new(3);
        let r = reaches_any(&g, &[n(1)]);
        assert_eq!(r, vec![false, true, false]);
    }

    #[test]
    fn reaches_any_ignores_out_of_range_targets() {
        let g = DiGraph::new(2);
        let r = reaches_any(&g, &[n(7)]);
        assert_eq!(r, vec![false, false]);
    }

    #[test]
    fn fraction_reaching_matches_manual_count() {
        let g = DiGraph::from_edges(4, [(n(0), n(1)), (n(2), n(1))]).unwrap();
        let f = fraction_reaching(&g, &[n(1)]);
        assert!((f - 0.75).abs() < 1e-12);
        assert_eq!(fraction_reaching(&DiGraph::new(0), &[]), 0.0);
    }

    #[test]
    fn scc_on_larger_random_ish_structure() {
        // Two rings joined by a bidirectional bridge form one SCC.
        let mut g = DiGraph::new(8);
        for i in 0..4 {
            g.add_edge(n(i), n((i + 1) % 4));
        }
        for i in 4..8 {
            g.add_edge(n(i), n(4 + (i + 1 - 4) % 4));
        }
        g.add_edge(n(0), n(4));
        g.add_edge(n(4), n(0));
        assert!(is_strongly_connected(&g));
        assert_eq!(strongly_connected_components(&g).len(), 1);
    }
}
