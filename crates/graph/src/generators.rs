//! Seeded graph generators.
//!
//! The centrepiece is [`GeometricConfig`], which reproduces the paper's
//! wireless topologies: nodes scattered uniformly in a 2-D arena, each with
//! its **own** radio range (heterogeneous ranges are what make the links
//! directed), with the base range calibrated by bisection so the generated
//! digraph hits a target edge count — e.g. the paper's 300-node,
//! ≈2164-edge mapping network. Generation retries fresh placements until
//! the digraph is strongly connected, because the mapping task can only
//! finish on a strongly connected topology.

use crate::connectivity::is_strongly_connected;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::geometry::{Point2, Rect};
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the random geometric digraph generator.
///
/// ```
/// use agentnet_graph::generators::GeometricConfig;
///
/// let net = GeometricConfig::new(60, 420).generate(7).unwrap();
/// assert_eq!(net.graph.node_count(), 60);
/// // Edge count is calibrated to within tolerance of the target.
/// assert!((net.graph.edge_count() as i64 - 420).unsigned_abs() <= 42);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeometricConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of *directed* edges; the base radio range is bisected
    /// until the edge count lands within [`Self::edge_tolerance`] of this.
    pub target_edges: usize,
    /// Acceptable absolute deviation from `target_edges` (default: 2 %).
    pub edge_tolerance: usize,
    /// Arena the nodes are placed in.
    pub arena: Rect,
    /// Radio-range heterogeneity `h`: each node's range is
    /// `base * U[1-h, 1+h]`. `h = 0` yields symmetric (undirected) links;
    /// the paper's "more realistic" environment uses `h > 0` so links are
    /// directed.
    pub range_heterogeneity: f64,
    /// Whether to require the result to be strongly connected (retrying
    /// placements until it is).
    pub require_strongly_connected: bool,
    /// Maximum fresh placements to try before giving up.
    pub max_retries: usize,
}

impl GeometricConfig {
    /// Creates a config with the crate defaults: unit-kilometre square
    /// arena, 25 % range heterogeneity, 2 % edge tolerance, strong
    /// connectivity required.
    pub fn new(nodes: usize, target_edges: usize) -> Self {
        GeometricConfig {
            nodes,
            target_edges,
            edge_tolerance: (target_edges / 50).max(4),
            arena: Rect::square(1000.0),
            range_heterogeneity: 0.25,
            require_strongly_connected: true,
            max_retries: 64,
        }
    }

    /// The paper's mapping network: 300 nodes, ≈2164 directed edges.
    pub fn paper_mapping() -> Self {
        GeometricConfig::new(300, 2164)
    }

    /// Sets the range heterogeneity (see [`Self::range_heterogeneity`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= h < 1.0`.
    pub fn with_heterogeneity(mut self, h: f64) -> Self {
        assert!((0.0..1.0).contains(&h), "heterogeneity must be in [0, 1)");
        self.range_heterogeneity = h;
        self
    }

    /// Sets the arena.
    pub fn with_arena(mut self, arena: Rect) -> Self {
        self.arena = arena;
        self
    }

    /// Generates a network from this config and a seed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for degenerate parameters and
    /// [`GraphError::GenerationFailed`] if no placement satisfying the
    /// constraints is found within `max_retries`.
    pub fn generate(&self, seed: u64) -> Result<GeometricNetwork, GraphError> {
        if self.nodes < 2 {
            return Err(GraphError::InvalidParameter {
                reason: format!("geometric network needs >= 2 nodes, got {}", self.nodes),
            });
        }
        let max_edges = self.nodes * (self.nodes - 1);
        if self.target_edges == 0 || self.target_edges > max_edges {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "target_edges {} outside (0, {max_edges}] for {} nodes",
                    self.target_edges, self.nodes
                ),
            });
        }
        for attempt in 0..self.max_retries {
            // Derive an independent stream per attempt so retries do not
            // correlate with each other.
            let mut rng =
                StdRng::seed_from_u64(seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let positions: Vec<Point2> = (0..self.nodes)
                .map(|_| {
                    Point2::new(
                        rng.random_range(0.0..self.arena.width),
                        rng.random_range(0.0..self.arena.height),
                    )
                })
                .collect();
            let h = self.range_heterogeneity;
            let range_factors: Vec<f64> =
                (0..self.nodes).map(|_| rng.random_range(1.0 - h..=1.0 + h)).collect();

            let base = self.calibrate_base_range(&positions, &range_factors);
            let graph = build_geometric_graph(&positions, &range_factors, base);
            let within = (graph.edge_count() as i64 - self.target_edges as i64).unsigned_abs()
                as usize
                <= self.edge_tolerance;
            if !within {
                continue;
            }
            if self.require_strongly_connected && !is_strongly_connected(&graph) {
                continue;
            }
            return Ok(GeometricNetwork { positions, range_factors, base_range: base, graph });
        }
        Err(GraphError::GenerationFailed {
            reason: format!(
                "no {}-node geometric digraph with ~{} edges{} in {} attempts",
                self.nodes,
                self.target_edges,
                if self.require_strongly_connected { " (strongly connected)" } else { "" },
                self.max_retries
            ),
        })
    }

    /// Bisects the base radio range until the edge count straddles the
    /// target, then returns the midpoint.
    fn calibrate_base_range(&self, positions: &[Point2], factors: &[f64]) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = self.arena.diagonal();
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            let edges = count_geometric_edges(positions, factors, mid);
            if edges < self.target_edges {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// A generated wireless topology: node positions, per-node range factors,
/// the calibrated base range, and the induced link digraph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeometricNetwork {
    /// Node positions in the arena.
    pub positions: Vec<Point2>,
    /// Per-node multiplicative range factors.
    pub range_factors: Vec<f64>,
    /// Calibrated base radio range (metres).
    pub base_range: f64,
    /// The induced directed link graph: `i -> j` iff
    /// `dist(i, j) <= base_range * range_factors[i]`.
    pub graph: DiGraph,
}

impl GeometricNetwork {
    /// Effective radio range of node `i`.
    pub fn range_of(&self, node: NodeId) -> f64 {
        self.base_range * self.range_factors[node.index()]
    }
}

fn count_geometric_edges(positions: &[Point2], factors: &[f64], base: f64) -> usize {
    let mut count = 0;
    for (i, &pi) in positions.iter().enumerate() {
        let r = base * factors[i];
        let r2 = r * r;
        for (j, &pj) in positions.iter().enumerate() {
            if i != j && pi.distance_sq(pj) <= r2 {
                count += 1;
            }
        }
    }
    count
}

fn build_geometric_graph(positions: &[Point2], factors: &[f64], base: f64) -> DiGraph {
    let mut g = DiGraph::new(positions.len());
    for (i, &pi) in positions.iter().enumerate() {
        let r = base * factors[i];
        let r2 = r * r;
        for (j, &pj) in positions.iter().enumerate() {
            if i != j && pi.distance_sq(pj) <= r2 {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` digraph: each ordered pair `(i, j)`, `i != j`,
/// receives an edge independently with probability `p`.
///
/// ```
/// use agentnet_graph::generators::erdos_renyi;
/// let g = erdos_renyi(20, 0.2, 7).unwrap();
/// assert_eq!(g.node_count(), 20);
/// assert_eq!(g, erdos_renyi(20, 0.2, 7).unwrap()); // seeded
/// ```
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<DiGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability {p} outside [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.random::<f64>() < p {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    Ok(g)
}

/// Directed ring `0 -> 1 -> ... -> n-1 -> 0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn directed_ring(n: usize) -> DiGraph {
    assert!(n >= 2, "ring needs at least 2 nodes");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
    }
    g
}

/// Bidirectional `rows x cols` grid (4-neighbourhood); a simple symmetric
/// topology useful in tests.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> DiGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = DiGraph::new(rows * cols);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
                g.add_edge(id(r, c + 1), id(r, c));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
                g.add_edge(id(r + 1, c), id(r, c));
            }
        }
    }
    g
}

/// Complete digraph on `n` nodes (every ordered pair linked).
pub fn complete(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_strongly_connected;

    #[test]
    fn geometric_hits_target_edges() {
        let cfg = GeometricConfig::new(80, 560);
        let net = cfg.generate(42).unwrap();
        let err = (net.graph.edge_count() as i64 - 560).unsigned_abs() as usize;
        assert!(err <= cfg.edge_tolerance, "edge error {err} > tolerance");
    }

    #[test]
    fn geometric_is_strongly_connected_when_required() {
        let net = GeometricConfig::new(60, 480).generate(3).unwrap();
        assert!(is_strongly_connected(&net.graph));
    }

    #[test]
    fn geometric_is_deterministic_per_seed() {
        let cfg = GeometricConfig::new(50, 300);
        let a = cfg.generate(9).unwrap();
        let b = cfg.generate(9).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn geometric_seeds_differ() {
        let cfg = GeometricConfig::new(50, 300);
        let a = cfg.generate(1).unwrap();
        let b = cfg.generate(2).unwrap();
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn heterogeneity_zero_gives_symmetric_links() {
        let net = GeometricConfig::new(40, 200).with_heterogeneity(0.0).generate(5).unwrap();
        assert!(net.graph.is_symmetric());
    }

    #[test]
    fn heterogeneity_produces_asymmetric_links() {
        let mut cfg = GeometricConfig::new(80, 400).with_heterogeneity(0.4);
        // Asymmetry does not need strong connectivity, and a sparse digraph
        // with very heterogeneous ranges is rarely strongly connected.
        cfg.require_strongly_connected = false;
        let net = cfg.generate(5).unwrap();
        assert!(!net.graph.is_symmetric(), "expected at least one one-way link");
    }

    #[test]
    fn geometric_rejects_bad_parameters() {
        assert!(matches!(
            GeometricConfig::new(1, 10).generate(0),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            GeometricConfig::new(10, 0).generate(0),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            GeometricConfig::new(10, 1000).generate(0),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn range_of_uses_factor() {
        let net = GeometricConfig::new(30, 120).generate(11).unwrap();
        let id = NodeId::new(3);
        assert!((net.range_of(id) - net.base_range * net.range_factors[3]).abs() < 1e-12);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi(10, 0.0, 1).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, 1).unwrap();
        assert_eq!(full.edge_count(), 90);
        assert!(erdos_renyi(10, 1.5, 1).is_err());
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        assert_eq!(erdos_renyi(20, 0.3, 7).unwrap(), erdos_renyi(20, 0.3, 7).unwrap());
    }

    #[test]
    fn ring_grid_complete_shapes() {
        let r = directed_ring(5);
        assert_eq!(r.edge_count(), 5);
        assert!(is_strongly_connected(&r));

        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // 2*(rows*(cols-1) + cols*(rows-1)) directed edges
        assert_eq!(g.edge_count(), 2 * (3 * 3 + 4 * 2));
        assert!(g.is_symmetric());
        assert!(is_strongly_connected(&g));

        let k = complete(4);
        assert_eq!(k.edge_count(), 12);
    }

    #[test]
    fn paper_mapping_config_matches_paper_constants() {
        let cfg = GeometricConfig::paper_mapping();
        assert_eq!(cfg.nodes, 300);
        assert_eq!(cfg.target_edges, 2164);
    }
}
