//! Breadth-first and depth-first traversal over [`DiGraph`].

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Breadth-first iterator over the nodes reachable from a start node
/// (following edge direction), yielding each node exactly once in BFS order.
///
/// ```
/// use agentnet_graph::{DiGraph, NodeId, traversal::Bfs};
/// let g = DiGraph::from_edges(4, [
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(2)),
/// ]).unwrap();
/// let order: Vec<_> = Bfs::new(&g, NodeId::new(0)).collect();
/// assert_eq!(order.len(), 3); // node 3 unreachable
/// assert_eq!(order[0], NodeId::new(0));
/// ```
#[derive(Debug)]
pub struct Bfs<'a> {
    graph: &'a DiGraph,
    queue: VecDeque<NodeId>,
    visited: Vec<bool>,
}

impl<'a> Bfs<'a> {
    /// Creates a BFS starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn new(graph: &'a DiGraph, start: NodeId) -> Self {
        assert!(start.index() < graph.node_count(), "start node out of range");
        let mut visited = vec![false; graph.node_count()];
        visited[start.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        Bfs { graph, queue, visited }
    }
}

impl Iterator for Bfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.queue.pop_front()?;
        for &next in self.graph.out_neighbors(node) {
            if !self.visited[next.index()] {
                self.visited[next.index()] = true;
                self.queue.push_back(next);
            }
        }
        Some(node)
    }
}

/// Depth-first (preorder) iterator over the nodes reachable from a start
/// node, yielding each node exactly once.
///
/// Neighbours are expanded in **reverse id order** so that the first child
/// visited is the lowest id, mirroring recursive DFS over sorted adjacency.
#[derive(Debug)]
pub struct Dfs<'a> {
    graph: &'a DiGraph,
    stack: Vec<NodeId>,
    visited: Vec<bool>,
}

impl<'a> Dfs<'a> {
    /// Creates a DFS starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn new(graph: &'a DiGraph, start: NodeId) -> Self {
        assert!(start.index() < graph.node_count(), "start node out of range");
        Dfs { graph, stack: vec![start], visited: vec![false; graph.node_count()] }
    }
}

impl Iterator for Dfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while let Some(node) = self.stack.pop() {
            if self.visited[node.index()] {
                continue;
            }
            self.visited[node.index()] = true;
            for &next in self.graph.out_neighbors(node).iter().rev() {
                if !self.visited[next.index()] {
                    self.stack.push(next);
                }
            }
            return Some(node);
        }
        None
    }
}

/// Returns the number of nodes reachable from `start` (including `start`).
pub fn reachable_count(graph: &DiGraph, start: NodeId) -> usize {
    Bfs::new(graph, start).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn chain(len: usize) -> DiGraph {
        DiGraph::from_edges(len, (0..len - 1).map(|i| (n(i), n(i + 1)))).unwrap()
    }

    #[test]
    fn bfs_visits_levels_in_order() {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 3
        let g = DiGraph::from_edges(4, [(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(3))])
            .unwrap();
        let order: Vec<_> = Bfs::new(&g, n(0)).collect();
        assert_eq!(order, vec![n(0), n(1), n(2), n(3)]);
    }

    #[test]
    fn bfs_respects_edge_direction() {
        let g = chain(3);
        assert_eq!(Bfs::new(&g, n(2)).count(), 1);
        assert_eq!(Bfs::new(&g, n(0)).count(), 3);
    }

    #[test]
    fn bfs_handles_cycles() {
        let g = DiGraph::from_edges(3, [(n(0), n(1)), (n(1), n(2)), (n(2), n(0))]).unwrap();
        let order: Vec<_> = Bfs::new(&g, n(1)).collect();
        assert_eq!(order, vec![n(1), n(2), n(0)]);
    }

    #[test]
    fn dfs_preorder_prefers_low_ids() {
        // 0 -> {1, 2}, 1 -> 3
        let g = DiGraph::from_edges(4, [(n(0), n(2)), (n(0), n(1)), (n(1), n(3))]).unwrap();
        let order: Vec<_> = Dfs::new(&g, n(0)).collect();
        assert_eq!(order, vec![n(0), n(1), n(3), n(2)]);
    }

    #[test]
    fn dfs_visits_each_node_once() {
        let g = DiGraph::from_edges(3, [(n(0), n(1)), (n(1), n(0)), (n(1), n(2))]).unwrap();
        let order: Vec<_> = Dfs::new(&g, n(0)).collect();
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn reachable_count_isolated_node_is_one() {
        let g = DiGraph::new(4);
        assert_eq!(reachable_count(&g, n(2)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_start_out_of_range_panics() {
        let g = DiGraph::new(1);
        let _ = Bfs::new(&g, n(3));
    }
}
