//! Error types for graph construction and generation.

use std::error::Error;
use std::fmt;

/// Errors produced by graph operations and generators.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node index.
        index: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// A generator could not satisfy its constraints (e.g. no strongly
    /// connected geometric digraph found within the retry budget).
    GenerationFailed {
        /// Human-readable description of the unsatisfied constraint.
        reason: String,
    },
    /// A requested parameter was invalid (e.g. zero nodes).
    InvalidParameter {
        /// Description of the invalid parameter.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { index, len } => {
                write!(f, "node index {index} out of range for graph of {len} nodes")
            }
            GraphError::GenerationFailed { reason } => {
                write!(f, "graph generation failed: {reason}")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { index: 9, len: 3 };
        assert_eq!(e.to_string(), "node index 9 out of range for graph of 3 nodes");
        let e = GraphError::GenerationFailed { reason: "no luck".into() };
        assert!(e.to_string().contains("no luck"));
        let e = GraphError::InvalidParameter { reason: "zero nodes".into() };
        assert!(e.to_string().starts_with("invalid parameter"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
