//! Dense node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`crate::DiGraph`].
///
/// Node ids are dense (`0..n`) so they double as vector indices throughout
/// the simulator; [`NodeId::index`] performs that conversion.
///
/// ```
/// use agentnet_graph::NodeId;
/// let id = NodeId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// A directed edge `(from, to)`.
///
/// ```
/// use agentnet_graph::ids::Edge;
/// use agentnet_graph::NodeId;
/// let e = Edge::new(NodeId::new(0), NodeId::new(1));
/// assert_eq!(e.reversed(), Edge::new(NodeId::new(1), NodeId::new(0)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
}

impl Edge {
    /// Creates an edge from `from` to `to`.
    #[inline]
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Edge { from, to }
    }

    /// Returns the edge with endpoints swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge { from: self.to, to: self.from }
    }

    /// Returns `true` if this edge is a self-loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.from == self.to
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        for i in [0usize, 1, 42, 65_535] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn node_id_display_is_compact() {
        assert_eq!(NodeId::new(12).to_string(), "n12");
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(3) < NodeId::new(10));
    }

    #[test]
    fn node_id_u32_conversions() {
        let id = NodeId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.as_u32(), 9);
    }

    #[test]
    #[should_panic(expected = "node index exceeds")]
    fn node_id_rejects_huge_index() {
        let _ = NodeId::new(usize::MAX);
    }

    #[test]
    fn edge_reverse_swaps_endpoints() {
        let e = Edge::new(NodeId::new(1), NodeId::new(2));
        assert_eq!(e.reversed().from, NodeId::new(2));
        assert_eq!(e.reversed().to, NodeId::new(1));
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn edge_loop_detection() {
        assert!(Edge::new(NodeId::new(5), NodeId::new(5)).is_loop());
        assert!(!Edge::new(NodeId::new(5), NodeId::new(6)).is_loop());
    }

    #[test]
    fn edge_display_shows_direction() {
        let e = Edge::new(NodeId::new(0), NodeId::new(3));
        assert_eq!(e.to_string(), "n0->n3");
    }
}
