//! Minimal 2-D geometry used for node placement and radio-range tests.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the 2-D simulation plane, in metres.
///
/// ```
/// use agentnet_graph::Point2;
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed, e.g. radio-range checks).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm when the point is interpreted as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Returns the vector scaled to unit length, or `None` for the zero
    /// vector.
    pub fn normalized(self) -> Option<Point2> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(Point2::new(self.x / n, self.y / n))
        }
    }

    /// Clamps both coordinates into `[0, width] x [0, height]`.
    pub fn clamped(self, width: f64, height: f64) -> Point2 {
        Point2::new(self.x.clamp(0.0, width), self.y.clamp(0.0, height))
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[min_x, min_x + width] x [min_y, min_y +
/// height]` — the simulation arena nodes live in. [`Rect::new`] anchors
/// the arena at the origin; [`Rect::anchored`] places its min corner
/// anywhere in the plane.
///
/// ```
/// use agentnet_graph::geometry::Rect;
/// use agentnet_graph::Point2;
/// let arena = Rect::new(1000.0, 600.0);
/// assert!(arena.contains(Point2::new(500.0, 300.0)));
/// assert!(!arena.contains(Point2::new(-1.0, 0.0)));
///
/// let shifted = Rect::anchored(Point2::new(500.0, -200.0), 1000.0, 600.0);
/// assert!(shifted.contains(Point2::new(1200.0, -100.0)));
/// assert!(!shifted.contains(Point2::new(100.0, 100.0)));
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// Arena width in metres.
    pub width: f64,
    /// Arena height in metres.
    pub height: f64,
    /// Min corner of the arena; `(0, 0)` for [`Rect::new`] arenas.
    #[serde(default)]
    origin: Point2,
}

impl Rect {
    /// Creates an arena of the given dimensions anchored at the origin.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        Rect::anchored(Point2::ORIGIN, width, height)
    }

    /// Creates an arena of the given dimensions whose min (bottom-left)
    /// corner sits at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite,
    /// or if `origin` is not finite.
    pub fn anchored(origin: Point2, width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "arena dimensions must be positive and finite"
        );
        assert!(origin.x.is_finite() && origin.y.is_finite(), "arena origin must be finite");
        Rect { width, height, origin }
    }

    /// A square arena with the given side length, anchored at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(side, side)
    }

    /// The min (bottom-left) corner of the arena.
    #[inline]
    pub fn origin(&self) -> Point2 {
        self.origin
    }

    /// Smallest contained x coordinate.
    #[inline]
    pub fn min_x(&self) -> f64 {
        self.origin.x
    }

    /// Smallest contained y coordinate.
    #[inline]
    pub fn min_y(&self) -> f64 {
        self.origin.y
    }

    /// Largest contained x coordinate.
    #[inline]
    pub fn max_x(&self) -> f64 {
        self.origin.x + self.width
    }

    /// Largest contained y coordinate.
    #[inline]
    pub fn max_y(&self) -> f64 {
        self.origin.y + self.height
    }

    /// Returns `true` if `p` lies inside (or on the boundary of) the arena.
    pub fn contains(&self, p: Point2) -> bool {
        (self.min_x()..=self.max_x()).contains(&p.x) && (self.min_y()..=self.max_y()).contains(&p.y)
    }

    /// Clamps both coordinates of `p` into the arena.
    pub fn clamp_point(&self, p: Point2) -> Point2 {
        Point2::new(p.x.clamp(self.min_x(), self.max_x()), p.y.clamp(self.min_y(), self.max_y()))
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Diagonal length — an upper bound on any pairwise distance.
    pub fn diagonal(&self) -> f64 {
        (self.width * self.width + self.height * self.height).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(-4.0, 7.5);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Point2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point2::ORIGIN.normalized().is_none());
    }

    #[test]
    fn clamp_keeps_points_in_arena() {
        let p = Point2::new(-5.0, 99.0).clamped(10.0, 20.0);
        assert_eq!(p, Point2::new(0.0, 20.0));
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point2::new(0.0, 10.0)));
        assert!(!r.contains(Point2::new(10.1, 0.0)));
    }

    #[test]
    fn rect_area_and_diagonal() {
        let r = Rect::new(3.0, 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.diagonal(), 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rect_rejects_zero_width() {
        let _ = Rect::new(0.0, 5.0);
    }

    #[test]
    fn anchored_rect_contains_and_clamps_relative_to_origin() {
        let r = Rect::anchored(Point2::new(500.0, -200.0), 100.0, 50.0);
        assert_eq!(r.min_x(), 500.0);
        assert_eq!(r.max_x(), 600.0);
        assert_eq!(r.min_y(), -200.0);
        assert_eq!(r.max_y(), -150.0);
        assert!(r.contains(Point2::new(500.0, -200.0)));
        assert!(r.contains(Point2::new(600.0, -150.0)));
        assert!(!r.contains(Point2::new(499.9, -175.0)));
        assert!(!r.contains(Point2::new(0.0, 0.0)));
        assert_eq!(r.clamp_point(Point2::new(0.0, 0.0)), Point2::new(500.0, -150.0));
        assert_eq!(r.clamp_point(Point2::new(550.0, -175.0)), Point2::new(550.0, -175.0));
    }

    #[test]
    fn origin_anchored_rect_matches_new() {
        let a = Rect::new(10.0, 20.0);
        let b = Rect::anchored(Point2::ORIGIN, 10.0, 20.0);
        assert_eq!(a, b);
        assert_eq!(a.origin(), Point2::ORIGIN);
        assert_eq!(a.clamp_point(Point2::new(-5.0, 99.0)), Point2::new(0.0, 20.0));
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn anchored_rejects_nan_origin() {
        let _ = Rect::anchored(Point2::new(f64::NAN, 0.0), 1.0, 1.0);
    }
}
