//! Directed-graph substrate for the `agentnet` wireless mobile-agent simulator.
//!
//! The paper's networks are *directed* graphs: every wireless node has its own
//! radio range, so node `A` may hear `B` while `B` cannot hear `A`. This crate
//! provides the graph data structure and algorithms that both the wireless
//! substrate ([`agentnet-radio`]) and the agent simulations
//! ([`agentnet-core`]) are built on:
//!
//! * [`DiGraph`] — a compact adjacency-list directed graph over dense
//!   [`NodeId`]s, with both out- and in-neighbour access.
//! * [`traversal`] — breadth-first and depth-first iterators.
//! * [`connectivity`] — Tarjan SCC, strong-connectivity checks and
//!   reachability queries (including "which nodes reach any gateway", the
//!   primitive behind the paper's connectivity metric).
//! * [`paths`] — shortest hop paths and hop-by-hop route validation.
//! * [`generators`] — seeded graph generators, most importantly the random
//!   geometric digraph that reproduces the paper's 300-node / ≈2164-edge
//!   mapping network.
//!
//! # Example
//!
//! ```
//! use agentnet_graph::{DiGraph, NodeId, connectivity};
//!
//! let mut g = DiGraph::new(3);
//! g.add_edge(NodeId::new(0), NodeId::new(1));
//! g.add_edge(NodeId::new(1), NodeId::new(2));
//! g.add_edge(NodeId::new(2), NodeId::new(0));
//! assert!(connectivity::is_strongly_connected(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cast;
pub mod connectivity;
pub mod digraph;
pub mod error;
pub mod generators;
pub mod geometry;
pub mod ids;
pub mod paths;
pub mod traversal;

pub use digraph::DiGraph;
pub use error::GraphError;
pub use geometry::Point2;
pub use ids::NodeId;
