//! Audited numeric-cast helpers.
//!
//! The `no-lossy-cast` agentlint rule bans bare float↔int `as` casts in
//! this crate and in `radio::spatial`; these helpers are the sanctioned
//! crossing points. Each documents its domain and carries the single
//! `agentlint::allow` for the cast it wraps, so every lossy conversion
//! in metric code is auditable in one place.

/// `part / whole` as an `f64` fraction; 0 when `whole` is 0.
///
/// Exact for counts below 2^53 — node/edge counts in this workspace are
/// bounded orders of magnitude below that.
#[inline]
#[must_use]
pub fn fraction(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        return 0.0;
    }
    // agentlint::allow(no-lossy-cast) — counts are far below 2^53.
    part as f64 / whole as f64
}

/// A count as `f64`, exact below 2^53.
#[inline]
#[must_use]
pub fn count_f64(n: usize) -> f64 {
    // agentlint::allow(no-lossy-cast) — counts are far below 2^53.
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_matches_direct_division() {
        assert_eq!(fraction(3, 4), 0.75);
        assert_eq!(fraction(0, 7), 0.0);
        assert_eq!(fraction(7, 7), 1.0);
    }

    #[test]
    fn fraction_of_zero_whole_is_zero() {
        assert_eq!(fraction(5, 0), 0.0);
    }

    #[test]
    fn count_is_exact_for_small_values() {
        assert_eq!(count_f64(0), 0.0);
        assert_eq!(count_f64(1 << 20), 1_048_576.0);
    }
}
