//! Compact adjacency-list directed graph.

use crate::error::GraphError;
use crate::ids::{Edge, NodeId};
use serde::{Deserialize, Serialize};

/// A directed graph over a fixed set of nodes `0..n`.
///
/// Out- and in-adjacency lists are both maintained so that agent movement
/// (out-neighbours) and route validation / gateway reachability
/// (in-neighbours) are equally cheap. Adjacency lists are kept **sorted by
/// node id**, which gives deterministic iteration order — the simulations
/// rely on that for reproducibility — and `O(log d)` membership tests.
///
/// Self-loops are rejected (a radio does not link to itself); parallel edges
/// are collapsed.
///
/// # Example
///
/// ```
/// use agentnet_graph::{DiGraph, NodeId};
///
/// let mut g = DiGraph::new(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(0), NodeId::new(2));
/// assert_eq!(g.out_degree(NodeId::new(0)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph { out: vec![Vec::new(); n], inn: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.out.len()).map(NodeId::new)
    }

    /// Checks that `node` is a valid id for this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] when the id is too large.
    pub fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() < self.out.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange { index: node.index(), len: self.out.len() })
        }
    }

    /// Adds the directed edge `from -> to`.
    ///
    /// Returns `true` if the edge was newly inserted, `false` if it already
    /// existed or is a self-loop (self-loops are ignored).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.out.len(), "edge source {from} out of range");
        assert!(to.index() < self.out.len(), "edge target {to} out of range");
        if from == to {
            return false;
        }
        let list = &mut self.out[from.index()];
        match list.binary_search(&to) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, to);
                let rlist = &mut self.inn[to.index()];
                let rpos = rlist.binary_search(&from).unwrap_err();
                rlist.insert(rpos, from);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Removes the directed edge `from -> to`.
    ///
    /// Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if from.index() >= self.out.len() || to.index() >= self.out.len() {
            return false;
        }
        let list = &mut self.out[from.index()];
        match list.binary_search(&to) {
            Ok(pos) => {
                list.remove(pos);
                let rlist = &mut self.inn[to.index()];
                let rpos = rlist.binary_search(&from).expect("in-list out of sync");
                rlist.remove(rpos);
                self.edge_count -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Removes every edge, keeping the node set.
    pub fn clear_edges(&mut self) {
        for l in &mut self.out {
            l.clear();
        }
        for l in &mut self.inn {
            l.clear();
        }
        self.edge_count = 0;
    }

    /// Replaces the entire edge set from per-source sorted out-neighbour
    /// rows, reusing adjacency storage — the bulk counterpart of
    /// repeated [`DiGraph::add_edge`] calls for callers (like the
    /// sharded link rebuild) that already produced each node's
    /// out-list. Walking the rows in ascending source order makes every
    /// rebuilt in-list come out sorted without any binary search: one
    /// `O(E)` pass instead of `O(E log d)`.
    ///
    /// `rows[i]` must be strictly sorted by id, free of self-loops, and
    /// reference only nodes `< node_count()`.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != node_count()` or a row references an
    /// out-of-range node; row ordering and self-loop freedom are
    /// debug-asserted.
    pub fn set_sorted_out_rows(&mut self, rows: &[Vec<NodeId>]) {
        assert_eq!(rows.len(), self.out.len(), "row count must match node count");
        for l in &mut self.inn {
            l.clear();
        }
        let mut count = 0usize;
        for (out, row) in self.out.iter_mut().zip(rows) {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "out rows must be strictly sorted");
            out.clear();
            out.extend_from_slice(row);
            count += row.len();
        }
        for (i, row) in rows.iter().enumerate() {
            let from = NodeId::new(i);
            for &to in row {
                debug_assert_ne!(from, to, "self-loops are not representable");
                assert!(to.index() < self.out.len(), "edge target {to} out of range");
                self.inn[to.index()].push(from);
            }
        }
        self.edge_count = count;
    }

    /// Returns `true` if the edge `from -> to` exists.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out.get(from.index()).is_some_and(|l| l.binary_search(&to).is_ok())
    }

    /// Out-neighbours of `node`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.out[node.index()]
    }

    /// In-neighbours of `node`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.inn[node.index()]
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inn[node.index()].len()
    }

    /// Iterator over every directed edge, in `(from, to)` id order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out.iter().enumerate().flat_map(|(i, l)| {
            let from = NodeId::new(i);
            l.iter().map(move |&to| Edge::new(from, to))
        })
    }

    /// Builds a graph of `n` nodes from an edge list (duplicates and
    /// self-loops are dropped).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an edge references a node
    /// `>= n`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut g = DiGraph::new(n);
        for (from, to) in edges {
            g.check_node(from)?;
            g.check_node(to)?;
            g.add_edge(from, to);
        }
        Ok(g)
    }

    /// Returns the graph with every edge reversed.
    pub fn reversed(&self) -> DiGraph {
        DiGraph { out: self.inn.clone(), inn: self.out.clone(), edge_count: self.edge_count }
    }

    /// Fraction of node pairs `(a, b)`, `a != b`, joined by an edge — the
    /// density of the directed graph in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 0.0;
        }
        crate::cast::fraction(self.edge_count, n * (n - 1))
    }

    /// Returns `true` if every edge `a -> b` has a matching edge `b -> a`
    /// (i.e. the digraph models an undirected network).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|e| self.has_edge(e.to, e.from))
    }

    /// Audits the internal representation: adjacency lists must be
    /// strictly sorted with in-range targets, the out- and in-lists must
    /// mirror each other exactly, and the cached edge count must match.
    ///
    /// Every public mutation preserves these properties; the check
    /// exists so invariant-checked simulation runs can prove it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn check_consistency(&self) -> Result<(), String> {
        let n = self.out.len();
        if self.inn.len() != n {
            return Err(format!("out lists cover {n} nodes but in lists {}", self.inn.len()));
        }
        for (label, lists) in [("out", &self.out), ("in", &self.inn)] {
            for (v, list) in lists.iter().enumerate() {
                if !list.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("{label}-list of node {v} is not strictly sorted"));
                }
                if let Some(bad) = list.iter().find(|t| t.index() >= n) {
                    return Err(format!("{label}-list of node {v} references node {bad} >= {n}"));
                }
            }
        }
        let out_edges: usize = self.out.iter().map(Vec::len).sum();
        let in_edges: usize = self.inn.iter().map(Vec::len).sum();
        if out_edges != self.edge_count || in_edges != self.edge_count {
            return Err(format!(
                "edge count {} disagrees with adjacency ({out_edges} out, {in_edges} in)",
                self.edge_count
            ));
        }
        for (u, list) in self.out.iter().enumerate() {
            for &v in list {
                if self.inn[v.index()].binary_search(&NodeId::new(u)).is_err() {
                    return Err(format!("edge {u} -> {v} missing from {v}'s in-list"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn new_graph_is_empty() {
        let g = DiGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.nodes().count(), 5);
    }

    #[test]
    fn add_edge_is_directional() {
        let mut g = DiGraph::new(3);
        assert!(g.add_edge(n(0), n(1)));
        assert!(g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(0)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut g = DiGraph::new(3);
        assert!(g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = DiGraph::new(3);
        assert!(!g.add_edge(n(1), n(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_edge_updates_both_lists() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(2), n(1));
        assert!(g.remove_edge(n(0), n(1)));
        assert!(!g.remove_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.in_neighbors(n(1)), &[n(2)]);
        assert!(g.out_neighbors(n(0)).is_empty());
    }

    #[test]
    fn remove_edge_out_of_range_is_false() {
        let mut g = DiGraph::new(2);
        assert!(!g.remove_edge(n(0), n(9)));
    }

    #[test]
    fn neighbors_are_sorted_for_determinism() {
        let mut g = DiGraph::new(5);
        g.add_edge(n(0), n(4));
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(3));
        assert_eq!(g.out_neighbors(n(0)), &[n(1), n(3), n(4)]);
    }

    #[test]
    fn in_neighbors_track_sources() {
        let mut g = DiGraph::new(4);
        g.add_edge(n(3), n(0));
        g.add_edge(n(1), n(0));
        assert_eq!(g.in_neighbors(n(0)), &[n(1), n(3)]);
        assert_eq!(g.in_degree(n(0)), 2);
        assert_eq!(g.out_degree(n(0)), 0);
    }

    #[test]
    fn edges_iterates_in_id_order() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(2), n(0));
        g.add_edge(n(0), n(2));
        g.add_edge(n(0), n(1));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![Edge::new(n(0), n(1)), Edge::new(n(0), n(2)), Edge::new(n(2), n(0))]
        );
    }

    #[test]
    fn from_edges_validates_ids() {
        let err = DiGraph::from_edges(2, [(n(0), n(5))]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { index: 5, len: 2 });
        let g = DiGraph::from_edges(3, [(n(0), n(1)), (n(0), n(1)), (n(1), n(1))]).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let r = g.reversed();
        assert!(r.has_edge(n(1), n(0)));
        assert!(r.has_edge(n(2), n(1)));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn clear_edges_keeps_nodes() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1));
        g.clear_edges();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.out_neighbors(n(0)).is_empty());
    }

    #[test]
    fn density_complete_graph_is_one() {
        let mut g = DiGraph::new(3);
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    g.add_edge(n(a), n(b));
                }
            }
        }
        assert!((g.density() - 1.0).abs() < 1e-12);
        assert_eq!(DiGraph::new(1).density(), 0.0);
    }

    #[test]
    fn symmetry_check() {
        let mut g = DiGraph::new(2);
        g.add_edge(n(0), n(1));
        assert!(!g.is_symmetric());
        g.add_edge(n(1), n(0));
        assert!(g.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_out_of_range() {
        let mut g = DiGraph::new(2);
        g.add_edge(n(0), n(2));
    }

    #[test]
    fn consistency_holds_through_mutation() {
        let mut g = DiGraph::new(6);
        assert_eq!(g.check_consistency(), Ok(()));
        for (a, b) in [(0, 3), (3, 0), (5, 1), (1, 2), (2, 1), (0, 1)] {
            g.add_edge(n(a), n(b));
            assert_eq!(g.check_consistency(), Ok(()));
        }
        g.remove_edge(n(3), n(0));
        g.remove_edge(n(0), n(1));
        assert_eq!(g.check_consistency(), Ok(()));
        g.clear_edges();
        assert_eq!(g.check_consistency(), Ok(()));
    }

    #[test]
    fn set_sorted_out_rows_matches_incremental_build() {
        let edges = [(0, 3), (0, 1), (3, 0), (5, 1), (1, 2), (2, 1), (4, 2)];
        let mut incremental = DiGraph::new(6);
        let mut rows: Vec<Vec<NodeId>> = vec![Vec::new(); 6];
        for &(a, b) in &edges {
            incremental.add_edge(n(a), n(b));
            rows[a].push(n(b));
        }
        for row in &mut rows {
            row.sort_unstable();
        }
        let mut bulk = DiGraph::new(6);
        // Pre-populate with garbage to prove the rows replace, not merge.
        bulk.add_edge(n(2), n(5));
        bulk.set_sorted_out_rows(&rows);
        assert_eq!(bulk, incremental);
        assert_eq!(bulk.check_consistency(), Ok(()));
        assert_eq!(bulk.edge_count(), edges.len());
    }

    #[test]
    fn set_sorted_out_rows_clears_on_empty_rows() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1));
        g.set_sorted_out_rows(&[Vec::new(), Vec::new(), Vec::new()]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.check_consistency(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn set_sorted_out_rows_rejects_wrong_row_count() {
        let mut g = DiGraph::new(3);
        g.set_sorted_out_rows(&[Vec::new()]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_sorted_out_rows_rejects_out_of_range_target() {
        let mut g = DiGraph::new(2);
        g.set_sorted_out_rows(&[vec![n(7)], Vec::new()]);
    }

    #[test]
    fn consistency_catches_corruption() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        // Forge a count mismatch.
        let mut bad = g.clone();
        bad.edge_count = 5;
        assert!(bad.check_consistency().unwrap_err().contains("edge count"));
        // Forge a one-sided edge (out-list entry with no in-list mirror).
        let mut bad = g.clone();
        bad.out[2].push(n(0));
        assert!(bad.check_consistency().is_err());
        // Forge an unsorted list.
        let mut bad = g;
        bad.out[0] = vec![n(2), n(1)];
        bad.inn[1].push(n(0)); // keep counts plausible
        assert!(bad.check_consistency().unwrap_err().contains("sorted"));
    }
}
