//! Property-based tests for the graph substrate.

use agentnet_graph::connectivity::{
    is_strongly_connected, reaches_any, strongly_connected_components,
};
use agentnet_graph::generators::erdos_renyi;
use agentnet_graph::paths::{bfs_distances, hop_distance, is_live_path, shortest_path};
use agentnet_graph::{DiGraph, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a small digraph as (node count, edge list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..n * 4).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (a, b) in edges {
                g.add_edge(NodeId::new(a), NodeId::new(b));
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn edge_count_matches_edges_iterator(g in arb_graph(12)) {
        prop_assert_eq!(g.edge_count(), g.edges().count());
    }

    #[test]
    fn out_and_in_adjacency_are_mirror_images(g in arb_graph(12)) {
        for e in g.edges() {
            prop_assert!(g.out_neighbors(e.from).contains(&e.to));
            prop_assert!(g.in_neighbors(e.to).contains(&e.from));
        }
        let out_total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_total, g.edge_count());
        prop_assert_eq!(in_total, g.edge_count());
    }

    #[test]
    fn double_reverse_is_identity(g in arb_graph(12)) {
        prop_assert_eq!(g.reversed().reversed(), g);
    }

    #[test]
    fn removing_every_edge_empties_the_graph(g in arb_graph(10)) {
        let mut h = g.clone();
        let edges: Vec<_> = g.edges().collect();
        for e in &edges {
            prop_assert!(h.remove_edge(e.from, e.to));
        }
        prop_assert_eq!(h.edge_count(), 0);
        prop_assert!(h.nodes().all(|v| h.out_degree(v) == 0 && h.in_degree(v) == 0));
    }

    #[test]
    fn scc_is_a_partition(g in arb_graph(14)) {
        let sccs = strongly_connected_components(&g);
        let mut seen = HashSet::new();
        for component in &sccs {
            prop_assert!(!component.is_empty());
            for &v in component {
                prop_assert!(seen.insert(v), "node {} in two components", v);
            }
        }
        prop_assert_eq!(seen.len(), g.node_count());
    }

    #[test]
    fn single_scc_iff_strongly_connected(g in arb_graph(10)) {
        let sccs = strongly_connected_components(&g);
        prop_assert_eq!(sccs.len() == 1, is_strongly_connected(&g));
    }

    #[test]
    fn shortest_path_is_live_and_minimal(g in arb_graph(10)) {
        let from = NodeId::new(0);
        let dist = bfs_distances(&g, from);
        for v in g.nodes() {
            match shortest_path(&g, from, v) {
                Some(path) => {
                    prop_assert!(is_live_path(&g, &path));
                    prop_assert_eq!(path[0], from);
                    prop_assert_eq!(*path.last().unwrap(), v);
                    prop_assert_eq!(path.len() - 1, dist[v.index()]);
                }
                None => prop_assert_eq!(dist[v.index()], usize::MAX),
            }
        }
    }

    #[test]
    fn hop_distance_satisfies_triangle_via_edges(g in arb_graph(10)) {
        // d(a, c) <= d(a, b) + 1 for every edge b -> c.
        let a = NodeId::new(0);
        for e in g.edges() {
            if let Some(db) = hop_distance(&g, a, e.from) {
                let dc = hop_distance(&g, a, e.to).expect("reachable via b");
                prop_assert!(dc <= db + 1);
            }
        }
    }

    #[test]
    fn reaches_any_agrees_with_per_node_search(g in arb_graph(10), t in 0usize..10) {
        let n = g.node_count();
        let target = NodeId::new(t % n);
        let reached = reaches_any(&g, &[target]);
        for v in g.nodes() {
            let direct = shortest_path(&g, v, target).is_some();
            prop_assert_eq!(reached[v.index()], direct, "mismatch at {}", v);
        }
    }

    #[test]
    fn erdos_renyi_density_tracks_p(n in 10usize..30, p in 0.0f64..1.0, seed in 0u64..50) {
        let g = erdos_renyi(n, p, seed).unwrap();
        let density = g.density();
        // Loose bound: 5 sigma of a binomial proportion.
        let sigma = (p * (1.0 - p) / (n * (n - 1)) as f64).sqrt();
        prop_assert!((density - p).abs() <= 5.0 * sigma + 1e-9,
            "density {density} too far from p {p}");
    }

    #[test]
    fn live_path_prefixes_of_shortest_paths_are_live(g in arb_graph(10)) {
        if let Some(path) = shortest_path(&g, NodeId::new(0), NodeId::new(g.node_count() - 1)) {
            for k in 1..=path.len() {
                prop_assert!(is_live_path(&g, &path[..k]));
            }
        }
    }
}
