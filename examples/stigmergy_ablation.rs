//! Stigmergy design-space ablation: how footprint board capacity and
//! recency window shape team dispersal.
//!
//! DESIGN.md marks the footprint semantics as an ablation target: the
//! paper only says agents "imprint their next target node in the current
//! node". This example sweeps the two knobs of our realization — how many
//! imprints a node keeps, and how quickly they expire — for a mapping
//! team and for the stigmergic-routing extension.
//!
//! ```text
//! cargo run --release --example stigmergy_ablation
//! ```

use agentnet::core::mapping::{MappingConfig, MappingSim};
use agentnet::core::policy::{MappingPolicy, RoutingPolicy};
use agentnet::core::routing::{RoutingConfig, RoutingSim};
use agentnet::engine::replicate::run_replicates;
use agentnet::engine::rng::SeedSequence;
use agentnet::engine::table::Table;
use agentnet::engine::Summary;
use agentnet::graph::generators::GeometricConfig;
use agentnet::graph::DiGraph;
use agentnet::radio::NetworkBuilder;

fn mapping_time(graph: &DiGraph, capacity: usize, window: u64) -> Summary {
    let samples = run_replicates(8, SeedSequence::new(3), |_, seeds| {
        let config = MappingConfig::new(MappingPolicy::Conscientious, 15)
            .stigmergic(true)
            .footprint_capacity(capacity)
            .footprint_window(window);
        let mut sim = MappingSim::new(graph.clone(), config, seeds.seed()).expect("valid config");
        let out = sim.run(1_000_000);
        assert!(out.finished);
        out.finishing_time.as_f64()
    });
    Summary::from_samples(samples).expect("replicates ran")
}

fn routing_conn(capacity: usize, window: u64) -> Summary {
    let samples = run_replicates(8, SeedSequence::new(4), |_, seeds| {
        let net = NetworkBuilder::new(150)
            .gateways(6)
            .target_edges(1200)
            .build(17)
            .expect("network builds");
        let config = RoutingConfig::new(RoutingPolicy::OldestNode, 60)
            .communication(true)
            .stigmergic(true)
            .footprint_capacity(capacity)
            .footprint_window(window);
        let mut sim = RoutingSim::new(net, config, seeds.seed()).expect("valid config");
        sim.run(300).mean_connectivity(150..300).expect("window inside run")
    });
    Summary::from_samples(samples).expect("replicates ran")
}

fn window_label(window: u64) -> String {
    if window == u64::MAX {
        "inf".into()
    } else {
        window.to_string()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = GeometricConfig::new(200, 1400).generate(2024)?.graph;

    println!("mapping: finishing time of 15 stigmergic conscientious agents");
    let mut table = Table::new(["capacity", "window", "finishing time"]);
    for &capacity in &[1usize, 2, 4, 8] {
        for &window in &[8u64, 32, u64::MAX] {
            let s = mapping_time(&graph, capacity, window);
            table.push_row([capacity.to_string(), window_label(window), s.mean_ci_string(0)]);
        }
    }
    println!("{}", table.to_markdown());

    println!("routing extension: gossiping oldest-node agents + footprints");
    let mut table = Table::new(["capacity", "window", "connectivity"]);
    for &capacity in &[1usize, 2, 4] {
        for &window in &[8u64, u64::MAX] {
            let s = routing_conn(capacity, window);
            table.push_row([capacity.to_string(), window_label(window), s.mean_ci_string(3)]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "Takeaway: a single never-expiring footprint per node (the paper's\n\
         minimal semantics) captures nearly all of the benefit; larger boards\n\
         mainly help crowded teams."
    );
    Ok(())
}
