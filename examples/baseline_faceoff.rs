//! Baseline face-off: the paper's oldest-node agents vs an ant colony
//! vs a node-run distance-vector protocol, on the *same* dynamic
//! wireless network and the *same* connectivity metric.
//!
//! Three design points on the decentralization/bandwidth spectrum:
//!
//! * distance-vector — every node broadcasts every step (maximum
//!   bandwidth, near-ideal connectivity, nodes must run code);
//! * oldest-node agents — nodes run nothing, a fixed fleet of agents
//!   carries all routing state;
//! * ant colony — nodes store only pheromone, ants sample paths.
//!
//! ```text
//! cargo run --release --example baseline_faceoff
//! ```

use agentnet::core::policy::RoutingPolicy;
use agentnet::core::routing::{RoutingConfig, RoutingSim};
use agentnet::engine::plot::sparkline;
use agentnet::engine::table::Table;
use agentnet::radio::NetworkBuilder;
use agentnet_baselines::{AcoConfig, AcoSim, DvConfig, DvSim};

const STEPS: u64 = 300;
const WINDOW: std::ops::Range<usize> = 150..300;

fn network() -> agentnet::radio::WirelessNetwork {
    NetworkBuilder::new(200)
        .gateways(10)
        .target_edges(1600)
        .build(77)
        .expect("face-off network builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(["system", "connectivity (150-300)", "traffic / step", "curve"]);

    // The paper's agents.
    let mut agents =
        RoutingSim::new(network(), RoutingConfig::new(RoutingPolicy::OldestNode, 80), 1)?;
    let out = agents.run(STEPS);
    table.push_row([
        "80 oldest-node agents".to_string(),
        format!("{:.3}", out.mean_connectivity(WINDOW).unwrap()),
        format!("{} migrations", agents.overhead().migrations / STEPS),
        sparkline(&out.connectivity, 30),
    ]);

    // Ant colony.
    let mut colony = AcoSim::new(network(), AcoConfig::new(80), 2)?;
    let series = colony.run(STEPS);
    table.push_row([
        "80 ACO ants".to_string(),
        format!("{:.3}", series.window_mean(WINDOW).unwrap()),
        format!("{} ant moves", colony.ant_moves() / STEPS),
        sparkline(&series, 30),
    ]);

    // Distance vector.
    let mut dv = DvSim::new(network(), DvConfig::default())?;
    let series = dv.run(STEPS);
    table.push_row([
        "distance-vector protocol".to_string(),
        format!("{:.3}", series.window_mean(WINDOW).unwrap()),
        format!("{} receptions", dv.receptions() / STEPS),
        sparkline(&series, 30),
    ]);

    println!("{}", table.to_markdown());
    println!(
        "The protocol buys its extra connectivity with an order of magnitude\n\
         more traffic — and requires every node to run code, which is exactly\n\
         the assumption the mobile-agent design removes."
    );
    Ok(())
}
