//! Deterministic load generator for the `agentnet-serve` route-query
//! daemon: replays a seeded request trace over UDP and reports QPS and
//! latency quantiles. Doubles as the CI serve-smoke client.
//!
//! ```text
//! # self-contained: boots an in-process daemon, then hammers it
//! cargo run --release --example loadgen
//!
//! # against an external daemon (see `repro serve`)
//! cargo run --release --example loadgen -- --addr 127.0.0.1:9900 \
//!     --nodes 1000 --requests 30000 --threads 4 --min-qpm 100000 \
//!     --report loadgen_report.json
//! ```
//!
//! The trace is a pure function of `--seed`, `--nodes`, `--threads`
//! and `--requests`: thread `t` draws from `SmallRng::seed_from_u64
//! (seed + t)` with a fixed verb mix (70% ROUTE, 15% LINKS, 10% REACH,
//! 5% INFO), so two runs against the same frozen map issue byte-
//! identical request streams. Exit is non-zero if any reply was an
//! error (or malformed, or lost after retries) or if throughput lands
//! under `--min-qpm`.

use agentnet::engine::obs::Metrics;
use agentnet::serve::{ServeConfig, Server, QUERY_MICROS_BUCKETS};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::net::{SocketAddr, UdpSocket};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One request of the deterministic trace, already wire-encoded.
fn trace_request(rng: &mut SmallRng, id: u64, nodes: usize) -> String {
    let verb = rng.random_range(0..100u32);
    let node = rng.random_range(0..nodes);
    match verb {
        0..=69 => format!("{id} ROUTE {node}"),
        70..=84 => format!("{id} LINKS {node}"),
        85..=94 => format!("{id} REACH {node}"),
        _ => format!("{id} INFO"),
    }
}

struct WorkerStats {
    sent: u64,
    ok: u64,
    errors: u64,
    lost: u64,
}

/// Send `count` trace requests and await each reply. A datagram lost on
/// a saturated loopback is retried a couple of times before being
/// counted as lost; `ERR` replies and id mismatches count as errors.
fn run_worker(
    addr: SocketAddr,
    thread_id: u64,
    seed: u64,
    nodes: usize,
    count: u64,
    metrics: &Metrics,
    next_id: &AtomicU64,
) -> std::io::Result<WorkerStats> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(Duration::from_millis(250)))?;
    let mut rng = SmallRng::seed_from_u64(seed + thread_id);
    let mut stats = WorkerStats { sent: 0, ok: 0, errors: 0, lost: 0 };
    let mut buf = [0u8; 2048];
    for _ in 0..count {
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        let request = trace_request(&mut rng, id, nodes);
        stats.sent += 1;
        let mut reply: Option<String> = None;
        for _attempt in 0..3 {
            let begin = Instant::now();
            socket.send_to(request.as_bytes(), addr)?;
            match socket.recv_from(&mut buf) {
                Ok((n, _)) => {
                    metrics.observe(
                        "loadgen_query_micros",
                        begin.elapsed().as_secs_f64() * 1e6,
                        QUERY_MICROS_BUCKETS,
                    );
                    reply = Some(String::from_utf8_lossy(&buf[..n]).into_owned());
                    break;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        match reply {
            Some(text) => {
                let mut parts = text.split_whitespace();
                let id_ok = parts.next() == Some(&id.to_string());
                let verdict = parts.next();
                if id_ok && verdict == Some("OK") {
                    stats.ok += 1;
                } else {
                    stats.errors += 1;
                }
            }
            None => stats.lost += 1,
        }
    }
    Ok(stats)
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--nodes N] [--seed S] [--threads T]\n\
         \x20              [--requests R] [--min-qpm Q] [--report FILE]\n\
         \n\
         Without --addr, an in-process daemon is booted on an N-node preset."
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut addr: Option<SocketAddr> = None;
    let mut nodes = 1_000usize;
    let mut seed = 42u64;
    let mut threads = 4usize;
    let mut requests = 60_000u64;
    let mut min_qpm = 0.0f64;
    let mut report: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next().and_then(|a| a.parse().ok()) {
                Some(a) => addr = Some(a),
                None => usage(),
            },
            "--nodes" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => nodes = n,
                None => usage(),
            },
            "--seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(s) => seed = s,
                None => usage(),
            },
            "--threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(t) => threads = t,
                None => usage(),
            },
            "--requests" => match args.next().and_then(|n| n.parse().ok()) {
                Some(r) => requests = r,
                None => usage(),
            },
            "--min-qpm" => match args.next().and_then(|n| n.parse().ok()) {
                Some(q) => min_qpm = q,
                None => usage(),
            },
            "--report" => match args.next() {
                Some(path) => report = Some(path),
                None => usage(),
            },
            _ => usage(),
        }
    }
    let threads = threads.max(1);

    // Without --addr, boot a frozen in-process daemon after a short
    // warmup so the example is self-contained and deterministic.
    let embedded = match addr {
        Some(_) => None,
        None => {
            let config = ServeConfig {
                nodes,
                warmup_steps: 50,
                query_threads: threads,
                ..ServeConfig::default()
            };
            match Server::start(config) {
                Ok(server) => {
                    println!("loadgen: booted in-process daemon on {}", server.udp_addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("loadgen: failed to boot daemon: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let target = addr.unwrap_or_else(|| embedded.as_ref().unwrap().udp_addr());

    let metrics = Metrics::enabled();
    let next_id = AtomicU64::new(1);
    let per_thread = requests / threads as u64;
    let remainder = requests % threads as u64;
    println!(
        "loadgen: {requests} requests to {target} across {threads} thread(s), \
         trace seed {seed}, node range 0..{nodes}"
    );
    let begin = Instant::now();
    let totals = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads as u64 {
            let count = per_thread + u64::from(t < remainder);
            let metrics = &metrics;
            let next_id = &next_id;
            workers.push(
                scope.spawn(move || run_worker(target, t, seed, nodes, count, metrics, next_id)),
            );
        }
        let mut totals = WorkerStats { sent: 0, ok: 0, errors: 0, lost: 0 };
        for worker in workers {
            match worker.join().expect("loadgen worker panicked") {
                Ok(stats) => {
                    totals.sent += stats.sent;
                    totals.ok += stats.ok;
                    totals.errors += stats.errors;
                    totals.lost += stats.lost;
                }
                Err(e) => {
                    eprintln!("loadgen: worker I/O failure: {e}");
                    totals.errors += 1;
                }
            }
        }
        totals
    });
    let secs = begin.elapsed().as_secs_f64();

    let snapshot = metrics.snapshot();
    let latency = snapshot.histograms.get("loadgen_query_micros");
    let quantile = |q: Option<f64>| q.map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into());
    let (p50, p95, p99) = match latency {
        Some(h) => (h.p50(), h.p95(), h.p99()),
        None => (None, None, None),
    };
    let qps = if secs > 0.0 { totals.ok as f64 / secs } else { 0.0 };
    let qpm = qps * 60.0;
    println!(
        "loadgen: {} ok / {} errors / {} lost in {secs:.2}s -> {qps:.0} qps ({qpm:.0}/min)",
        totals.ok, totals.errors, totals.lost
    );
    println!(
        "loadgen: client-side latency µs p50={} p95={} p99={}",
        quantile(p50),
        quantile(p95),
        quantile(p99)
    );

    if let Some(path) = &report {
        let json = format!(
            "{{\n  \"target\": \"{target}\",\n  \"threads\": {threads},\n  \"seed\": {seed},\n  \
             \"nodes\": {nodes},\n  \"requests\": {requests},\n  \"ok\": {},\n  \
             \"errors\": {},\n  \"lost\": {},\n  \"wall_secs\": {secs},\n  \"qps\": {qps},\n  \
             \"queries_per_min\": {qpm},\n  \"p50_micros\": {},\n  \"p95_micros\": {},\n  \
             \"p99_micros\": {}\n}}\n",
            totals.ok,
            totals.errors,
            totals.lost,
            p50.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
            p95.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
            p99.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("loadgen: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("loadgen: wrote {path}");
    }

    if let Some(server) = embedded {
        server.shutdown();
    }
    if totals.errors > 0 || totals.lost > 0 {
        eprintln!("loadgen: FAILED ({} errors, {} lost)", totals.errors, totals.lost);
        return ExitCode::FAILURE;
    }
    if min_qpm > 0.0 && qpm < min_qpm {
        eprintln!("loadgen: FAILED (throughput {qpm:.0}/min below floor {min_qpm:.0}/min)");
        return ExitCode::FAILURE;
    }
    println!("loadgen: PASS");
    ExitCode::SUCCESS
}
