//! Campus sensor-field mapping: which agent algorithm should survey an
//! unknown deployment, and how many agents are worth dispatching?
//!
//! The scenario from the paper's introduction: a fresh wireless
//! deployment (here, a campus sensor field) whose topology nobody knows.
//! Mobile agents hop between sensors and cooperatively build the map
//! every higher-order service depends on.
//!
//! ```text
//! cargo run --release --example campus_mapping
//! ```

use agentnet::core::mapping::{MappingConfig, MappingSim};
use agentnet::core::policy::MappingPolicy;
use agentnet::engine::replicate::run_replicates;
use agentnet::engine::rng::SeedSequence;
use agentnet::engine::table::Table;
use agentnet::engine::Summary;
use agentnet::graph::generators::GeometricConfig;
use agentnet::graph::geometry::Rect;
use agentnet::graph::DiGraph;

fn survey(graph: &DiGraph, policy: MappingPolicy, team: usize, stigmergic: bool) -> Summary {
    let samples = run_replicates(10, SeedSequence::new(99), |_, seeds| {
        let config = MappingConfig::new(policy, team).stigmergic(stigmergic);
        let mut sim =
            MappingSim::new(graph.clone(), config, seeds.seed()).expect("valid survey config");
        let out = sim.run(1_000_000);
        assert!(out.finished, "survey did not finish");
        out.finishing_time.as_f64()
    });
    Summary::from_samples(samples).expect("replicates ran")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 200-sensor deployment over a 800 m x 500 m campus.
    let net = GeometricConfig::new(200, 1400).with_arena(Rect::new(800.0, 500.0)).generate(2024)?;
    println!(
        "campus deployment: {} sensors, {} directed radio links\n",
        net.graph.node_count(),
        net.graph.edge_count()
    );

    let mut table = Table::new(["team", "algorithm", "survey time (steps)", "spread (std)"]);
    for team in [1usize, 4, 12, 24] {
        for (name, policy, stig) in [
            ("random", MappingPolicy::Random, false),
            ("conscientious", MappingPolicy::Conscientious, false),
            ("conscientious + footprints", MappingPolicy::Conscientious, true),
            ("super-conscientious + footprints", MappingPolicy::SuperConscientious, true),
        ] {
            let s = survey(&net.graph, policy, team, stig);
            table.push_row([
                team.to_string(),
                name.to_string(),
                format!("{:.0}", s.mean),
                format!("{:.0}", s.std),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading the table: footprints let the team spread out, so the survey\n\
         time keeps dropping as you add agents — dispatch a dozen stigmergic\n\
         super-conscientious agents rather than one sophisticated one."
    );
    Ok(())
}
