//! Disaster-relief MANET: laptops, handhelds and two satellite uplinks
//! form an ad-hoc network; mobile agents keep every node's route to an
//! uplink fresh while responders move around.
//!
//! Demonstrates the routing study end to end: connectivity over time,
//! the oldest-node vs random comparison, and why letting oldest-node
//! agents gossip (visiting) backfires unless they also leave footprints.
//!
//! ```text
//! cargo run --release --example manet_routing
//! ```

use agentnet::core::policy::RoutingPolicy;
use agentnet::core::routing::{RoutingConfig, RoutingSim};
use agentnet::engine::replicate::run_replicates;
use agentnet::engine::rng::SeedSequence;
use agentnet::engine::table::Table;
use agentnet::engine::Summary;
use agentnet::radio::NetworkBuilder;

const STEPS: u64 = 300;
const WINDOW: std::ops::Range<usize> = 150..300;

fn field_network() -> NetworkBuilder {
    // 150 devices, 4 satellite uplinks, most responders on foot (slow),
    // batteries draining over the shift.
    NetworkBuilder::new(150)
        .gateways(4)
        .target_edges(1350)
        .mobile_fraction(0.6)
        .speed_range(1.0, 5.0)
}

fn connectivity(config: &RoutingConfig) -> Summary {
    let samples = run_replicates(10, SeedSequence::new(5), |_, seeds| {
        let net = field_network().build(33).expect("field network builds");
        let mut sim =
            RoutingSim::new(net, config.clone(), seeds.seed()).expect("valid routing config");
        sim.run(STEPS).mean_connectivity(WINDOW).expect("window inside run")
    });
    Summary::from_samples(samples).expect("replicates ran")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One run in detail: watch connectivity build up from nothing.
    let net = field_network().build(33)?;
    println!(
        "field network: {} devices, {} uplinks, {} mobile",
        net.node_count(),
        net.gateways().len(),
        net.nodes().iter().filter(|n| n.kind.is_mobile()).count()
    );
    let mut sim = RoutingSim::new(net, RoutingConfig::new(RoutingPolicy::OldestNode, 60), 1)?;
    let out = sim.run(STEPS);
    println!("\nconnectivity over time (one run, 60 oldest-node agents):");
    for step in [0usize, 10, 25, 50, 100, 200, 299] {
        let c = out.connectivity.values()[step];
        let bar = "#".repeat((c * 40.0) as usize);
        println!("  t={step:>3} {c:>5.2} {bar}");
    }

    // The deployment decision table.
    println!("\nwhich agent fleet keeps the field online? (10 runs each)");
    let mut table = Table::new(["fleet", "connectivity (steps 150-300)"]);
    let fleets: [(&str, RoutingConfig); 5] = [
        ("60 random", RoutingConfig::new(RoutingPolicy::Random, 60)),
        ("60 oldest-node", RoutingConfig::new(RoutingPolicy::OldestNode, 60)),
        (
            "60 oldest-node, gossiping",
            RoutingConfig::new(RoutingPolicy::OldestNode, 60).communication(true),
        ),
        (
            "60 oldest-node, gossiping + footprints",
            RoutingConfig::new(RoutingPolicy::OldestNode, 60).communication(true).stigmergic(true),
        ),
        (
            "60 oldest-node, footprints",
            RoutingConfig::new(RoutingPolicy::OldestNode, 60).stigmergic(true),
        ),
    ];
    for (name, config) in &fleets {
        table.push_row([name.to_string(), connectivity(config).mean_ci_string(3)]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Gossip alone makes oldest-node agents chase each other (the paper's\n\
         Fig. 11); adding footprints restores the dispersion and keeps the\n\
         best of both."
    );
    Ok(())
}
