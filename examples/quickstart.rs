//! Quickstart: map a small wireless network with a team of stigmergic
//! agents, then keep a mobile ad-hoc network routable with oldest-node
//! agents.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use agentnet::core::mapping::{MappingConfig, MappingSim};
use agentnet::core::policy::{MappingPolicy, RoutingPolicy};
use agentnet::core::routing::{RoutingConfig, RoutingSim};
use agentnet::graph::generators::GeometricConfig;
use agentnet::radio::NetworkBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Scenario 1: map an unknown static wireless network. ----------
    // 80 sensors scattered over a square kilometre; heterogeneous radio
    // ranges make the link graph directed.
    let net = GeometricConfig::new(80, 560).generate(7)?;
    println!(
        "generated network: {} nodes, {} directed links, base range {:.0} m",
        net.graph.node_count(),
        net.graph.edge_count(),
        net.base_range
    );

    // Five conscientious agents that leave footprints so they spread out.
    let config = MappingConfig::new(MappingPolicy::Conscientious, 5).stigmergic(true);
    let mut sim = MappingSim::new(net.graph.clone(), config, 1)?;
    let outcome = sim.run(100_000);
    println!(
        "mapping finished: {} (in {} steps; every agent now holds all {} links)",
        outcome.finished,
        outcome.finishing_time,
        net.graph.edge_count()
    );

    // --- Scenario 2: keep a mobile ad-hoc network routable. -----------
    // 120 nodes, 6 internet gateways, half the nodes wander on battery.
    let manet = NetworkBuilder::new(120).gateways(6).target_edges(960).build(11)?;
    let config = RoutingConfig::new(RoutingPolicy::OldestNode, 40);
    let mut sim = RoutingSim::new(manet, config, 2)?;
    let outcome = sim.run(300);
    println!(
        "routing converged: connectivity {:.1}% of nodes hold a live gateway route \
         (mean over steps 150-300)",
        100.0 * outcome.mean_connectivity(150..300).unwrap_or(0.0)
    );
    Ok(())
}
