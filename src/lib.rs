//! `agentnet` — mobile software agents for wireless network mapping and
//! dynamic routing.
//!
//! Facade crate re-exporting the whole workspace, which reproduces
//! Khazaei, Mišić & Mišić, *"Mobile Software Agents for Wireless Network
//! Mapping and Dynamic Routing"* (ICDCS 2010):
//!
//! * [`graph`] — directed-graph substrate (heterogeneous radios make
//!   wireless links directed).
//! * [`engine`] — deterministic time-step simulation engine, statistics
//!   and replication.
//! * [`radio`] — the wireless network model: mobility, battery decay,
//!   per-step link tables.
//! * [`core`] — the paper's contribution: mapping and routing agents
//!   with stigmergic (footprint) and direct communication.
//! * [`baselines`] — comparator systems: ant-colony routing and a
//!   node-run distance-vector protocol.
//! * [`experiments`] — every figure of the paper as a machine-checked
//!   experiment (see the `repro` binary).
//! * [`serve`] — a route-query daemon over the live simulation
//!   (`repro serve`): steps the substrate on one thread and answers
//!   UDP map queries from an atomically swapped snapshot.
//!
//! See the README for an architecture overview and `examples/` for
//! runnable scenarios.
//!
//! ```
//! use agentnet::graph::{DiGraph, NodeId};
//! let mut g = DiGraph::new(2);
//! g.add_edge(NodeId::new(0), NodeId::new(1));
//! assert_eq!(g.edge_count(), 1);
//! ```

#![forbid(unsafe_code)]

pub use agentnet_baselines as baselines;
pub use agentnet_core as core;
pub use agentnet_engine as engine;
pub use agentnet_experiments as experiments;
pub use agentnet_graph as graph;
pub use agentnet_radio as radio;
pub use agentnet_serve as serve;
