//! Offline stand-in for `serde_json`.
//!
//! Works over the [`serde::Value`] data model of the vendored `serde`
//! crate: [`to_string`] / [`to_string_pretty`] emit JSON text,
//! [`from_str`] parses it back, and the [`json!`] macro builds values
//! inline. Object key order is insertion order (deterministic), and
//! floats are emitted with Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `json!` macro's array arm necessarily builds by pushing; the lint
// would fire at every in-crate expansion site.
#![allow(clippy::vec_init_then_push)]

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use std::fmt::Write as _;

/// Serializes any [`serde::Serialize`] type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserializes a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

fn emit(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn emit_number(n: &Number, out: &mut String) {
    match *n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) if v.is_finite() => {
            // `{:?}` is Rust's shortest round-trip float form and always
            // contains a `.` or exponent, matching serde_json (`1.0`, not
            // `1`).
            let _ = write!(out, "{v:?}");
        }
        // serde_json emits null for non-finite floats.
        Number::F64(_) => out.push_str("null"),
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::from_f64(f)))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|i| Value::Number(Number::from_i64(i)))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(|u| Value::Number(Number::from_u64(u)))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

/// Builds a [`Value`] from inline JSON-like syntax.
///
/// Supports the subset this workspace uses: object literals with string
/// keys, array literals, and arbitrary expressions implementing
/// [`serde::Serialize`] in value position.
///
/// ```
/// use serde_json::json;
/// let v = json!({ "name": "fig5", "passed": true, "means": [1.0, 2.0] });
/// assert_eq!(v["name"], "fig5");
/// assert!(v["means"].is_array());
/// ```
#[macro_export]
macro_rules! json {
    // -- internal object muncher: values are accumulated token by token
    //    until a top-level comma (commas inside groups are invisible) --
    (@obj $map:ident ()) => {};
    (@obj $map:ident ($key:literal : $($rest:tt)*)) => {
        $crate::json!(@val $map $key () $($rest)*)
    };
    (@val $map:ident $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $map.insert($key, $crate::json!($($val)+));
        $crate::json!(@obj $map ($($rest)*));
    };
    (@val $map:ident $key:literal ($($val:tt)+)) => {
        $map.insert($key, $crate::json!($($val)+));
    };
    (@val $map:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json!(@val $map $key ($($val)* $next) $($rest)*)
    };
    // -- internal array muncher --
    (@arr $vec:ident ()) => {};
    (@arr $vec:ident ($($rest:tt)+)) => {
        $crate::json!(@item $vec () $($rest)+)
    };
    (@item $vec:ident ($($val:tt)+) , $($rest:tt)*) => {
        $vec.push($crate::json!($($val)+));
        $crate::json!(@arr $vec ($($rest)*));
    };
    (@item $vec:ident ($($val:tt)+)) => {
        $vec.push($crate::json!($($val)+));
    };
    (@item $vec:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json!(@item $vec ($($val)* $next) $($rest)*)
    };
    // -- entry points --
    (null) => { $crate::Value::Null };
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut vec: ::std::vec::Vec<$crate::Value> = ::std::vec![];
        $crate::json!(@arr vec ($($body)*));
        $crate::Value::Array(vec)
    }};
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json!(@obj map ($($body)*));
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = json!({
            "a": 1,
            "b": [true, null, "x"],
            "c": { "nested": -2.5 },
        });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"a":1,"b":[true,null,"x"],"c":{"nested":-2.5}}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_indents() {
        let v = json!({ "k": [1] });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }

    #[test]
    fn strings_escape() {
        let text = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn parse_whitespace_and_unicode() {
        let v: Value = from_str("  { \"k\" : \"caf\\u00e9\" } ").unwrap();
        assert_eq!(v["k"], "café");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn numbers_preserve_integers() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = from_str("-3").unwrap();
        assert_eq!(v.as_i64(), Some(-3));
    }

    #[test]
    fn index_missing_is_null() {
        let v = json!({ "a": 1 });
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }
}
