//! Offline vendored `#[derive(Serialize, Deserialize)]` for the
//! stand-in `serde` crate.
//!
//! Implemented without `syn`/`quote` (the build environment has no
//! crates.io access): a small token-tree parser extracts the item shape,
//! and the impls are emitted as source text. Supported shapes — which
//! cover everything in this workspace:
//!
//! * structs with named fields (honouring `#[serde(default)]` per field)
//! * newtype/single-field structs marked `#[serde(transparent)]`
//! * enums of unit variants (serialized as their name string)
//! * enums mixing unit / struct / newtype variants, externally tagged by
//!   default or internally tagged via `#[serde(tag = "...")]`, with
//!   optional `#[serde(rename_all = "snake_case")]`
//!
//! Unsupported input (generics, tuple structs without `transparent`,
//! tuple variants with more than one field) fails the build with a
//! descriptive panic rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    tag: Option<String>,
    rename_all: Option<String>,
}

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// One unnamed field.
    Newtype,
    Struct(Vec<Field>),
}

enum Item {
    // Container attrs are parsed and kept for future use (rename_all
    // on structs); only enums consume them today.
    #[allow(dead_code)]
    NamedStruct {
        name: String,
        attrs: ContainerAttrs,
        fields: Vec<Field>,
    },
    /// Single-field struct (named or tuple) marked transparent;
    /// `field_name` is `None` for tuple form (`self.0`).
    TransparentStruct {
        name: String,
        field_name: Option<String>,
    },
    Enum {
        name: String,
        attrs: ContainerAttrs,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_str(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Parses the attributes at the start of `tokens[*pos..]`, advancing
/// `pos`, and folds any `#[serde(...)]` contents into `attrs`.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize, attrs: &mut ContainerAttrs) -> bool {
    let mut saw_field_default = false;
    while *pos + 1 < tokens.len() && is_punct(&tokens[*pos], '#') {
        if let TokenTree::Group(g) = &tokens[*pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if inner.first().and_then(ident_str).as_deref() == Some("serde") {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        saw_field_default |= parse_serde_args(args.stream(), attrs);
                    }
                }
                *pos += 2;
                continue;
            }
        }
        break;
    }
    saw_field_default
}

/// Parses `transparent`, `default`, `tag = "..."`, `rename_all = "..."`
/// from the inside of one `#[serde(...)]`. Returns whether `default`
/// appeared (it is a field-level attribute).
fn parse_serde_args(stream: TokenStream, attrs: &mut ContainerAttrs) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut saw_default = false;
    let mut i = 0;
    while i < tokens.len() {
        let key = ident_str(&tokens[i])
            .unwrap_or_else(|| panic!("serde attribute: expected identifier, got {}", tokens[i]));
        let mut value = None;
        i += 1;
        if i < tokens.len() && is_punct(&tokens[i], '=') {
            i += 1;
            if let TokenTree::Literal(lit) = &tokens[i] {
                let s = lit.to_string();
                value = Some(s.trim_matches('"').to_string());
            } else {
                panic!("serde attribute {key}: expected string literal value");
            }
            i += 1;
        }
        match (key.as_str(), value) {
            ("transparent", None) => attrs.transparent = true,
            ("default", None) => saw_default = true,
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            (other, _) => {
                panic!("vendored serde_derive does not support the `{other}` serde attribute")
            }
        }
        if i < tokens.len() {
            assert!(is_punct(&tokens[i], ','), "serde attribute list: expected comma");
            i += 1;
        }
    }
    saw_default
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if tokens.get(*pos).and_then(ident_str).as_deref() == Some("pub") {
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if g.delimiter() == Delimiter::Parenthesis {
                *pos += 1;
            }
        }
    }
}

/// Skips a type (or expression) up to a top-level comma, tracking
/// angle-bracket depth so commas inside generics don't terminate early.
fn skip_to_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Parses `name: Type, ...` named-field lists (struct bodies and struct
/// variant bodies).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let mut field_attrs = ContainerAttrs::default();
        let default = parse_attrs(&tokens, &mut pos, &mut field_attrs);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = ident_str(&tokens[pos])
            .unwrap_or_else(|| panic!("expected field name, got {}", tokens[pos]));
        pos += 1;
        assert!(is_punct(&tokens[pos], ':'), "expected `:` after field `{name}`");
        pos += 1;
        skip_to_comma(&tokens, &mut pos);
        pos += 1; // consume the comma (or run off the end)
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple struct/variant body `(A, B, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        let mut attrs = ContainerAttrs::default();
        parse_attrs(&tokens, &mut pos, &mut attrs);
        skip_visibility(&tokens, &mut pos);
        skip_to_comma(&tokens, &mut pos);
        pos += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let mut attrs = ContainerAttrs::default();
        parse_attrs(&tokens, &mut pos, &mut attrs);
        if pos >= tokens.len() {
            break;
        }
        let name = ident_str(&tokens[pos])
            .unwrap_or_else(|| panic!("expected variant name, got {}", tokens[pos]));
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                assert!(
                    n == 1,
                    "vendored serde_derive supports only single-field tuple variants; \
                     `{name}` has {n}"
                );
                pos += 1;
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        if is_punct_at(&tokens, pos, '=') {
            pos += 1;
            skip_to_comma(&tokens, &mut pos);
        }
        if is_punct_at(&tokens, pos, ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn is_punct_at(tokens: &[TokenTree], pos: usize, c: char) -> bool {
    tokens.get(pos).is_some_and(|t| is_punct(t, c))
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut attrs = ContainerAttrs::default();
    parse_attrs(&tokens, &mut pos, &mut attrs);
    skip_visibility(&tokens, &mut pos);

    let keyword = tokens
        .get(pos)
        .and_then(ident_str)
        .unwrap_or_else(|| panic!("expected `struct` or `enum`"));
    pos += 1;
    let name = tokens.get(pos).and_then(ident_str).unwrap_or_else(|| panic!("expected item name"));
    pos += 1;
    if is_punct_at(&tokens, pos, '<') {
        panic!("vendored serde_derive does not support generic types (`{name}`)");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                if attrs.transparent {
                    assert!(
                        fields.len() == 1,
                        "#[serde(transparent)] requires exactly one field (`{name}`)"
                    );
                    let field_name = fields.into_iter().next().unwrap().name;
                    Item::TransparentStruct { name, field_name: Some(field_name) }
                } else {
                    Item::NamedStruct { name, attrs, fields }
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                assert!(
                    attrs.transparent && n == 1,
                    "tuple struct `{name}` must be #[serde(transparent)] with one field \
                     (got {n} fields)"
                );
                Item::TransparentStruct { name, field_name: None }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                Item::Enum { name, attrs, variants }
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn rename(variant: &str, rule: Option<&str>) -> String {
    match rule {
        None => variant.to_string(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in variant.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => variant.to_lowercase(),
        Some(other) => panic!("unsupported rename_all rule: {other}"),
    }
}

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut inserts = String::new();
    for f in fields {
        inserts.push_str(&format!(
            "map.insert(\"{0}\", ::serde::Serialize::to_value(&self.{0}));\n",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut map = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Object(map)\n\
             }}\n\
         }}\n"
    )
}

/// Field extraction used by both struct and struct-variant
/// deserialization: look the key up in `obj`, falling back to
/// `Default::default()` for `#[serde(default)]` fields and to
/// null-deserialization otherwise (so `Option` fields tolerate absence).
fn field_expr(f: &Field) -> String {
    if f.default {
        format!(
            "{0}: match obj.get(\"{0}\") {{\n\
                 ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 ::core::option::Option::None => ::core::default::Default::default(),\n\
             }},\n",
            f.name
        )
    } else {
        format!(
            "{0}: match obj.get(\"{0}\") {{\n\
                 ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 ::core::option::Option::None =>\n\
                     ::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_|\n\
                         ::serde::Error::msg(\"missing field `{0}`\"))?,\n\
             }},\n",
            f.name
        )
    }
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut field_exprs = String::new();
    for f in fields {
        field_exprs.push_str(&field_expr(f));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let obj = v.as_object().ok_or_else(||\n\
                     ::serde::Error::msg(\"{name}: expected object\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n\
                     {field_exprs}\
                 }})\n\
             }}\n\
         }}\n"
    )
}

fn gen_transparent(name: &str, field_name: Option<&str>) -> String {
    let access = match field_name {
        Some(f) => format!("self.{f}"),
        None => "self.0".to_string(),
    };
    let construct = match field_name {
        Some(f) => format!("{name} {{ {f}: ::serde::Deserialize::from_value(v)? }}"),
        None => format!("{name}(::serde::Deserialize::from_value(v)?)"),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&{access})\n\
             }}\n\
         }}\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 ::core::result::Result::Ok({construct})\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, attrs: &ContainerAttrs, variants: &[Variant]) -> String {
    let rule = attrs.rename_all.as_deref();
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = rename(vname, rule);
        match (&v.shape, attrs.tag.as_deref()) {
            (VariantShape::Unit, None) => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::String(\"{wire}\".to_string()),\n"
            )),
            (VariantShape::Unit, Some(tag)) => arms.push_str(&format!(
                "{name}::{vname} => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert(\"{tag}\", ::serde::Value::String(\"{wire}\".to_string()));\n\
                     ::serde::Value::Object(map)\n\
                 }},\n"
            )),
            (VariantShape::Newtype, None) => arms.push_str(&format!(
                "{name}::{vname}(inner) => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert(\"{wire}\", ::serde::Serialize::to_value(inner));\n\
                     ::serde::Value::Object(map)\n\
                 }},\n"
            )),
            (VariantShape::Newtype, Some(_)) => {
                panic!("internally tagged newtype variants are unsupported ({name}::{vname})")
            }
            (VariantShape::Struct(fields), tag) => {
                let pattern: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pattern = pattern.join(", ");
                let mut inserts = String::new();
                for f in &fields[..] {
                    inserts.push_str(&format!(
                        "fields.insert(\"{0}\", ::serde::Serialize::to_value({0}));\n",
                        f.name
                    ));
                }
                let build = match tag {
                    Some(tag) => format!(
                        "let mut map = ::serde::Map::new();\n\
                         map.insert(\"{tag}\", ::serde::Value::String(\"{wire}\".to_string()));\n\
                         let mut fields = map;\n\
                         {inserts}\
                         ::serde::Value::Object(fields)\n"
                    ),
                    None => format!(
                        "let mut fields = ::serde::Map::new();\n\
                         {inserts}\
                         let mut map = ::serde::Map::new();\n\
                         map.insert(\"{wire}\", ::serde::Value::Object(fields));\n\
                         ::serde::Value::Object(map)\n"
                    ),
                };
                arms.push_str(&format!("{name}::{vname} {{ {pattern} }} => {{\n{build}}},\n"));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, attrs: &ContainerAttrs, variants: &[Variant]) -> String {
    let rule = attrs.rename_all.as_deref();
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = rename(vname, rule);
        match &v.shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!(
                    "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                ));
                // Tagged form also admits {"tag": "wire"} objects.
                keyed_arms.push_str(&format!(
                    "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantShape::Newtype => keyed_arms.push_str(&format!(
                "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}(\n\
                     ::serde::Deserialize::from_value(payload)?)),\n"
            )),
            VariantShape::Struct(fields) => {
                let mut field_exprs = String::new();
                for f in &fields[..] {
                    field_exprs.push_str(&field_expr(f));
                }
                keyed_arms.push_str(&format!(
                    "\"{wire}\" => {{\n\
                         let obj = payload.as_object().ok_or_else(||\n\
                             ::serde::Error::msg(\"{name}::{vname}: expected object\"))?;\n\
                         ::core::result::Result::Ok({name}::{vname} {{\n{field_exprs}}})\n\
                     }},\n"
                ));
            }
        }
    }

    let body = match attrs.tag.as_deref() {
        Some(tag) => format!(
            "let obj = v.as_object().ok_or_else(||\n\
                 ::serde::Error::msg(\"{name}: expected object\"))?;\n\
             let tag = obj.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(||\n\
                 ::serde::Error::msg(\"{name}: missing `{tag}` tag\"))?;\n\
             let payload = v;\n\
             let _ = payload;\n\
             match tag {{\n\
                 {keyed_arms}\
                 other => ::core::result::Result::Err(\n\
                     ::serde::Error::msg(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
             }}\n"
        ),
        None => format!(
            "if let ::core::option::Option::Some(s) = v.as_str() {{\n\
                 return match s {{\n\
                     {unit_arms}\
                     other => ::core::result::Result::Err(\n\
                         ::serde::Error::msg(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 }};\n\
             }}\n\
             let obj = v.as_object().ok_or_else(||\n\
                 ::serde::Error::msg(\"{name}: expected string or object\"))?;\n\
             let (key, payload) = obj.iter().next().ok_or_else(||\n\
                 ::serde::Error::msg(\"{name}: empty object\"))?;\n\
             match key.as_str() {{\n\
                 {keyed_arms}\
                 other => ::core::result::Result::Err(\n\
                     ::serde::Error::msg(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
             }}\n"
        ),
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

/// For internally-tagged struct-variant deserialization the fields live
/// beside the tag, so `payload` must be the whole object. For the
/// external form `payload` is the single value under the variant key.
/// `gen_enum_deserialize` binds `payload` accordingly before the match.
fn derive(input: TokenStream, want_serialize: bool) -> TokenStream {
    let item = parse_item(input);
    let code = match (&item, want_serialize) {
        (Item::NamedStruct { name, fields, .. }, true) => gen_struct_serialize(name, fields),
        (Item::NamedStruct { name, fields, .. }, false) => gen_struct_deserialize(name, fields),
        (Item::TransparentStruct { name, field_name }, true) => {
            // Transparent emits both impls from one generator; return only
            // the requested half by regenerating and splitting below.
            let full = gen_transparent(name, field_name.as_deref());
            split_transparent(&full, true)
        }
        (Item::TransparentStruct { name, field_name }, false) => {
            let full = gen_transparent(name, field_name.as_deref());
            split_transparent(&full, false)
        }
        (Item::Enum { name, attrs, variants }, true) => gen_enum_serialize(name, attrs, variants),
        (Item::Enum { name, attrs, variants }, false) => {
            gen_enum_deserialize(name, attrs, variants)
        }
    };
    code.parse().unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

fn split_transparent(full: &str, want_serialize: bool) -> String {
    let marker = "impl ::serde::Deserialize";
    let split = full.find(marker).expect("transparent code has both impls");
    if want_serialize {
        full[..split].to_string()
    } else {
        full[split..].to_string()
    }
}

/// Derives the stand-in `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive(input, true)
}

/// Derives the stand-in `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive(input, false)
}
