//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The workspace uses channels for fan-in of replicate results, where
//! mpsc semantics (multi-producer, single-consumer, unbounded) match
//! crossbeam's `unbounded` exactly.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Clonable, like
    /// crossbeam's `Sender`.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterator over received messages; ends when all senders drop.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Borrowing iterator over a receiver.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning iterator over a receiver.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Error returned by [`Sender::send`] when the channel is closed.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and closed.
    #[derive(Debug)]
    pub struct RecvError;

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn fan_in_across_threads() {
            let (tx, rx) = super::unbounded::<u32>();
            std::thread::scope(|scope| {
                for t in 0..4u32 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..10 {
                            tx.send(t * 100 + i).unwrap();
                        }
                    });
                }
            });
            drop(tx);
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got.len(), 40);
        }
    }
}
