//! The test runner: deterministic RNG, configuration, case errors, and
//! the driver loop that replays committed regression seeds before
//! running fresh random cases.

use std::any::Any;
use std::path::{Path, PathBuf};

/// Deterministic RNG driving strategy generation (splitmix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero. Uses the
    /// widening-multiply reduction, matching the vendored `rand`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite
        // fast while still exploring the input space. Override with
        // PROPTEST_CASES, same env var as the real crate.
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed test case: the assertion message plus the inputs that
/// produced it.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Converts the `catch_unwind` outcome of one case body into a case
/// result, attaching the generated inputs to any failure.
pub fn resolve_outcome(
    outcome: Result<Result<(), TestCaseError>, Box<dyn Any + Send>>,
    inputs: &str,
) -> Result<(), TestCaseError> {
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(TestCaseError::fail(format!("{}\n  inputs: {}", e.message(), inputs))),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(TestCaseError::fail(format!("panicked: {}\n  inputs: {}", msg, inputs)))
        }
    }
}

/// FNV-1a hash for deriving stable per-test seeds from names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Locates the `.proptest-regressions` file next to the test source.
///
/// `file!()` paths are workspace-relative while the test binary's
/// working directory is usually the package root, so strip leading
/// path components until a candidate exists.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let rel = source_file.strip_suffix(".rs")?;
    let rel = format!("{rel}.proptest-regressions");
    let mut candidate = Path::new(&rel);
    loop {
        if candidate.exists() {
            return Some(candidate.to_path_buf());
        }
        let mut comps = candidate.components();
        comps.next()?;
        let stripped = comps.as_path();
        if stripped.as_os_str().is_empty() {
            return None;
        }
        candidate = stripped;
    }
}

/// Parses `cc <hex>` lines into replay seeds. The original proptest
/// hashes cannot be replayed bit-for-bit by this stand-in, so each
/// recorded case instead pins one deterministic seed derived from its
/// hash — committed regressions keep getting exercised on every run.
fn regression_seeds(source_file: &str) -> Vec<u64> {
    let Some(path) = regression_path(source_file) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("cc ") {
            let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if hex.len() >= 16 {
                if let Ok(seed) = u64::from_str_radix(&hex[..16], 16) {
                    seeds.push(seed);
                }
            }
        }
    }
    seeds
}

/// Runs one property: replayed regression seeds first, then `cases`
/// random cases seeded deterministically from the test name. Panics
/// with the failing inputs on the first failure.
pub fn run_property<F>(name: &str, source_file: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes()) ^ fnv1a(source_file.as_bytes()).rotate_left(17);
    let mut run_one = |seed: u64, origin: &str| {
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest property `{name}` failed ({origin}, seed {seed:#018x}):\n{}",
                e.message()
            );
        }
    };
    for seed in regression_seeds(source_file) {
        run_one(seed, "regression replay");
    }
    for i in 0..config.cases {
        run_one(base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)), "random case");
    }
}
