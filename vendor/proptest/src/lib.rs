//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: range and tuple
//! strategies, `collection::vec`, `prop_map`/`prop_flat_map`, the
//! `proptest!` macro with optional `#![proptest_config(..)]`, the
//! `prop_assert*` macros, and replay of `cc` entries from
//! `.proptest-regressions` files (each entry seeds one deterministic
//! case that runs before the random ones, so committed regressions are
//! always exercised first).
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed rather than OS entropy, and failing
//! inputs are reported but not shrunk.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A length specification for [`vec`]: either an exact length or a
    /// range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub lo: usize,
        /// Inclusive upper bound.
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The glob-import surface tests pull in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    // `#[macro_export]` already places the macros at the crate root;
    // re-exporting them here mirrors real proptest's prelude.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: no test functions left.
    (@fns $cfg:expr; ) => {};
    // Internal: one test function, then recurse on the rest.
    (@fns $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_property(
                stringify!($name),
                file!(),
                __config,
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    $crate::test_runner::resolve_outcome(__outcome, &__inputs)
                },
            );
        }
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    // Entry with a config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    // Entry without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (2usize..=9).generate(&mut rng);
            assert!((2..=9).contains(&w));
            let f = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            let v = crate::collection::vec(0u64..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = crate::collection::vec(0u64..5, 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
    }

    #[test]
    fn maps_compose() {
        let mut rng = TestRng::from_seed(3);
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0usize..10, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(a in 0usize..10, b in 0u64..5) {
            prop_assert!(a < 10);
            prop_assert_ne!(b, 99);
            prop_assert_eq!(a + 1, a + 1);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in crate::collection::vec(0.0f64..1.0, 1..8)) {
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
