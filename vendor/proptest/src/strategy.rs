//! Strategies: deterministic value generators driven by [`TestRng`].

use crate::collection::SizeRange;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree or shrinking: a
/// strategy simply produces a value from the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding landing exactly on the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
