//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand`'s API it actually
//! uses: seedable deterministic generators ([`rngs::StdRng`],
//! [`rngs::SmallRng`]), uniform sampling over ranges via [`RngExt`], and
//! in-place slice shuffling via [`seq::SliceRandom`].
//!
//! Both generators are xoshiro256++ instances seeded through a SplitMix64
//! expansion, which is one of the real crate's supported constructions.
//! Streams are deterministic for a given seed on every platform; no
//! entropy source is touched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniformly distributed 64-bit
/// words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it into the full
    /// internal state with SplitMix64 (distinct seeds give unrelated
    /// streams).
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state shared by both named generators.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// The "standard" generator: deterministic, seedable, fast.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256PlusPlus);

    /// A small, fast generator for simulation inner loops.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Domain-separate from StdRng so the two types seeded with the
            // same value do not emit the same stream.
            SmallRng(Xoshiro256PlusPlus::seed_from_u64(seed ^ 0x5113_23A0_1EB5_37A9))
        }
    }
}

/// Types that can be drawn uniformly from a generator via
/// [`RngExt::random`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + draw
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + draw
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::random(rng);
        let v = self.start + unit * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::random(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        SampleRange::<f64>::sample(self.start as f64..self.end as f64, rng) as f32
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`]. This is the trait user code imports (`use rand::RngExt`).
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic in the generator stream.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn std_and_small_rng_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.random_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g: f64 = rng.random_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&g));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: usize = rng.random_range(5..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn unit_interval_excludes_one() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
