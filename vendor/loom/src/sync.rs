//! Model-checked stand-ins for `std::sync` types.
//!
//! `Arc` is re-exported from std (reference counting itself is not a
//! source of interesting interleavings for these models); `Mutex`,
//! `RwLock` and the `atomic` types are intercepted by the runtime.

use crate::rt;
use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

pub use std::sync::Arc;

/// Mirror of `std::sync::PoisonError`, so `.lock().expect(..)` call
/// sites compile unchanged. Model locks never actually poison.
pub struct PoisonError<G> {
    _marker: PhantomData<G>,
}

impl<G> fmt::Debug for PoisonError<G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PoisonError { .. }")
    }
}

pub type LockResult<G> = Result<G, PoisonError<G>>;

// ---- Mutex -----------------------------------------------------------

pub struct Mutex<T> {
    lid: usize,
    data: UnsafeCell<T>,
}

// Safety: the model runtime enforces mutual exclusion — at most one
// logical thread holds the write side at a time, and only while the
// whole model is serialized through the scheduler.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let lid = rt::with(|sched, _| sched.lock_new());
        Mutex { lid, data: UnsafeCell::new(value) }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::with(|sched, me| sched.lock_write(me, self.lid));
        Ok(MutexGuard { lock: self })
    }
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::with(|sched, me| sched.unlock_write(me, self.lock.lid));
    }
}

// ---- RwLock ----------------------------------------------------------

pub struct RwLock<T> {
    lid: usize,
    data: UnsafeCell<T>,
}

// Safety: as for Mutex; concurrent readers only ever get `&T`.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        let lid = rt::with(|sched, _| sched.lock_new());
        RwLock { lid, data: UnsafeCell::new(value) }
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        rt::with(|sched, me| sched.lock_read(me, self.lid));
        Ok(RwLockReadGuard { lock: self })
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        rt::with(|sched, me| sched.lock_write(me, self.lid));
        Ok(RwLockWriteGuard { lock: self })
    }
}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        rt::with(|sched, me| sched.unlock_read(me, self.lock.lid));
    }
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        rt::with(|sched, me| sched.unlock_write(me, self.lock.lid));
    }
}

// ---- atomics ---------------------------------------------------------

pub mod atomic {
    //! Model-checked atomics. Values are stored in the runtime's
    //! per-location store lists, never in the struct itself.

    use crate::rt;

    pub use std::sync::atomic::Ordering;

    /// Untyped core shared by the typed wrappers.
    struct Cell {
        loc: usize,
    }

    impl Cell {
        fn new(initial: u64) -> Self {
            Cell { loc: rt::with(|sched, me| sched.atomic_new(me, initial)) }
        }

        fn load(&self, ord: Ordering) -> u64 {
            rt::with(|sched, me| sched.atomic_load(me, self.loc, ord))
        }

        fn store(&self, value: u64, ord: Ordering) {
            rt::with(|sched, me| sched.atomic_store(me, self.loc, value, ord));
        }

        fn rmw(&self, ord: Ordering, f: &dyn Fn(u64) -> u64) -> u64 {
            rt::with(|sched, me| sched.atomic_rmw(me, self.loc, ord, f))
        }
    }

    pub struct AtomicU64(Cell);

    impl AtomicU64 {
        pub fn new(v: u64) -> Self {
            AtomicU64(Cell::new(v))
        }
        pub fn load(&self, ord: Ordering) -> u64 {
            self.0.load(ord)
        }
        pub fn store(&self, v: u64, ord: Ordering) {
            self.0.store(v, ord);
        }
        pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
            self.0.rmw(ord, &move |old| old.wrapping_add(v))
        }
        pub fn swap(&self, v: u64, ord: Ordering) -> u64 {
            self.0.rmw(ord, &move |_| v)
        }
    }

    pub struct AtomicUsize(Cell);

    impl AtomicUsize {
        pub fn new(v: usize) -> Self {
            AtomicUsize(Cell::new(v as u64))
        }
        pub fn load(&self, ord: Ordering) -> usize {
            self.0.load(ord) as usize
        }
        pub fn store(&self, v: usize, ord: Ordering) {
            self.0.store(v as u64, ord);
        }
        pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
            self.0.rmw(ord, &move |old| old.wrapping_add(v as u64)) as usize
        }
        pub fn swap(&self, v: usize, ord: Ordering) -> usize {
            self.0.rmw(ord, &move |_| v as u64) as usize
        }
    }

    pub struct AtomicBool(Cell);

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            AtomicBool(Cell::new(u64::from(v)))
        }
        pub fn load(&self, ord: Ordering) -> bool {
            self.0.load(ord) != 0
        }
        pub fn store(&self, v: bool, ord: Ordering) {
            self.0.store(u64::from(v), ord);
        }
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            self.0.rmw(ord, &move |_| u64::from(v)) != 0
        }
    }
}
