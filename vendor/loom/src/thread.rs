//! Model-checked stand-ins for `std::thread`.
//!
//! Spawned closures run on real OS threads, but the runtime parks every
//! thread except the one the explored schedule marks active, so
//! execution is fully serialized and deterministic.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

type Slot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

pub struct JoinHandle<T> {
    id: usize,
    slot: Slot<T>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = rt::current();
    let id = sched.spawn_thread(me);
    let slot: Slot<T> = Arc::new(Mutex::new(None));
    let thread_slot = Arc::clone(&slot);
    let thread_sched = Arc::clone(&sched);
    std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || {
            rt::set_current(Some((Arc::clone(&thread_sched), id)));
            thread_sched.wait_first_scheduled(id);
            let result = catch_unwind(AssertUnwindSafe(f));
            // The result is stored before finish_thread flips the state
            // to Finished, so a joiner always finds it filled.
            *thread_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            rt::set_current(None);
            thread_sched.finish_thread(id);
        })
        .expect("loom: failed to spawn a model thread");
    JoinHandle { id, slot }
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes, establishing
    /// the usual join happens-before edge. Returns `Err` with the panic
    /// payload if the thread panicked, like `std::thread`.
    pub fn join(self) -> std::thread::Result<T> {
        rt::with(|sched, me| sched.join_thread(me, self.id));
        // The slot can only be empty on a doomed iteration (join while
        // a panic unwinds or after a deadlock) — report it as a failed
        // thread rather than panicking over the original error.
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .unwrap_or_else(|| Err(Box::new("loom: thread never completed (doomed iteration)")))
    }
}

/// A pure scheduling point: gives the explorer a chance to preempt.
pub fn yield_now() {
    rt::with(|sched, me| sched.schedule_point(me));
}
