//! The exploration runtime: a cooperative scheduler over real OS
//! threads (exactly one logical thread runs at a time) plus a small
//! C11-style weak-memory model.
//!
//! Exploration is depth-first over a *path*: every nondeterministic
//! decision (which thread runs next, which store a load observes) is a
//! branch point recorded in a trail. After each iteration the trail is
//! advanced odometer-style — replay the unchanged prefix, take the next
//! alternative at the deepest unexhausted branch — until every path has
//! been executed.
//!
//! Memory model, per atomic location:
//!
//! - Stores form a modification order (their serialized execution
//!   order — one valid order; schedule exploration covers the rest).
//!   Each store records its writer, the writer's clock component at
//!   store time, and — for `Release`-or-stronger stores — a snapshot of
//!   the writer's full vector clock.
//! - A load may observe any store not hidden by coherence: nothing
//!   older than what this thread last observed at the location, and
//!   nothing older than the newest store that happens-before the load.
//!   The surviving candidates are a value branch.
//! - An `Acquire`-or-stronger load of a `Release` store joins the
//!   store's clock snapshot into the loader (synchronizes-with).
//! - RMWs read the newest store and, when `Relaxed`, forward the read
//!   store's release clock (release-sequence continuation).
//! - `SeqCst` is modeled as `AcqRel`: sound for happens-before-based
//!   invariants (it never invents behaviors), but it will not rule out
//!   non-SC anomalies like store buffering — do not assert those here.
//!
//! Locks (`Mutex`, `RwLock`) keep a sync clock joined at every unlock
//! and re-joined into every acquirer, modeling that lock acquisition
//! synchronizes with all prior unlocks.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Hard cap on logical threads per `model` (main + spawned).
pub(crate) const MAX_THREADS: usize = 4;

type VClock = [u64; MAX_THREADS];

fn join(dst: &mut VClock, src: &VClock) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(*s);
    }
}

/// Does `clock` already cover an event by `writer` at component `at`?
fn covers(clock: &VClock, writer: usize, at: u64) -> bool {
    clock[writer] >= at
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for a lock (by lock id); woken by that lock's unlocks.
    BlockedOnLock(usize),
    /// Waiting to join a thread (by thread id); woken when it finishes.
    BlockedOnJoin(usize),
    Finished,
}

impl Status {
    fn is_blocked(self) -> bool {
        matches!(self, Status::BlockedOnLock(_) | Status::BlockedOnJoin(_))
    }
}

struct ThreadState {
    status: Status,
    clock: VClock,
}

struct Store {
    value: u64,
    writer: usize,
    /// The writer's own clock component when the store executed.
    at: u64,
    /// Writer's full clock for `Release`-or-stronger stores.
    release: Option<VClock>,
}

struct Location {
    stores: Vec<Store>,
    /// Per thread: index of the newest store this thread has observed
    /// (read or written) — the read-read/write-read coherence floor.
    last_seen: [usize; MAX_THREADS],
}

struct LockState {
    writer: Option<usize>,
    readers: Vec<usize>,
    /// Joined at every unlock, re-joined into every acquirer.
    sync: VClock,
}

/// One nondeterministic decision and its untried alternatives.
struct BranchPoint {
    options: Vec<usize>,
    pick: usize,
}

#[derive(Default)]
struct Path {
    trail: Vec<BranchPoint>,
    pos: usize,
}

impl Path {
    /// Replay the recorded choice at this position, or record a fresh
    /// branch and take its first option. Single-option decisions are
    /// not recorded (nothing to explore).
    fn branch(&mut self, options: Vec<usize>) -> usize {
        debug_assert!(!options.is_empty());
        if options.len() == 1 {
            return options[0];
        }
        if self.pos < self.trail.len() {
            let bp = &self.trail[self.pos];
            debug_assert_eq!(bp.options, options, "loom: execution diverged during replay");
            self.pos += 1;
            bp.options[bp.pick]
        } else {
            let choice = options[0];
            self.trail.push(BranchPoint { options, pick: 0 });
            self.pos += 1;
            choice
        }
    }

    /// Advance to the next unexplored path; false when exhausted.
    fn step_back(&mut self) -> bool {
        while let Some(bp) = self.trail.last_mut() {
            if bp.pick + 1 < bp.options.len() {
                bp.pick += 1;
                return true;
            }
            self.trail.pop();
        }
        false
    }
}

struct State {
    threads: Vec<ThreadState>,
    active: usize,
    path: Path,
    locations: Vec<Location>,
    locks: Vec<LockState>,
    branches: usize,
    deadlock: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    max_branches: usize,
}

fn runnable(st: &State) -> Vec<usize> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect()
}

/// Wake only the threads waiting on `lid`. Waking precisely (instead
/// of wake-all) matters for exploration cost, not correctness: a
/// spuriously woken thread re-checks and re-blocks, but while runnable
/// it widens every schedule branch point, multiplying the path count by
/// interleavings that differ only in no-op wakeups.
fn wake_lock_waiters(st: &mut State, lid: usize) {
    for t in &mut st.threads {
        if t.status == Status::BlockedOnLock(lid) {
            t.status = Status::Runnable;
        }
    }
}

/// Wake the threads waiting to join `child`.
fn wake_join_waiters(st: &mut State, child: usize) {
    for t in &mut st.threads {
        if t.status == Status::BlockedOnJoin(child) {
            t.status = Status::Runnable;
        }
    }
}

impl Scheduler {
    pub(crate) fn new(max_branches: usize) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: Vec::new(),
                active: 0,
                path: Path::default(),
                locations: Vec::new(),
                locks: Vec::new(),
                branches: 0,
                deadlock: false,
            }),
            cv: Condvar::new(),
            max_branches,
        }
    }

    /// Locks the exploration state, shrugging off poisoning: a panic
    /// raised while the state lock was held (assertion failure,
    /// deadlock report) should surface as itself, not as PoisonError.
    fn st(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn begin_iteration(&self) {
        let mut st = self.st();
        let mut clock = [0; MAX_THREADS];
        clock[0] = 1;
        st.threads = vec![ThreadState { status: Status::Runnable, clock }];
        st.active = 0;
        st.locations.clear();
        st.locks.clear();
        st.branches = 0;
        st.deadlock = false;
        st.path.pos = 0;
    }

    pub(crate) fn step_back(&self) -> bool {
        self.st().path.step_back()
    }

    fn pick(&self, st: &mut State, options: Vec<usize>) -> usize {
        st.branches += 1;
        assert!(
            st.branches <= self.max_branches,
            "loom: branch limit exceeded — shrink the model or raise LOOM_MAX_BRANCHES"
        );
        st.path.branch(options)
    }

    fn wait_until_active(&self, mut st: MutexGuard<'_, State>, me: usize) {
        while st.active != me {
            if st.deadlock {
                drop(st);
                if std::thread::panicking() {
                    // Already unwinding — let the original panic surface.
                    return;
                }
                panic!("loom: deadlock detected");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn declare_deadlock(&self, st: &mut State) -> ! {
        st.deadlock = true;
        self.cv.notify_all();
        panic!("loom: deadlock — every thread is blocked");
    }

    /// True when the current iteration can no longer be explored
    /// meaningfully: a panic is unwinding through model code (guard
    /// drops re-enter the scheduler) or a deadlock was declared. All
    /// operations turn into benign no-ops so the original panic can
    /// propagate instead of cascading into a panic-while-panicking.
    fn doomed(st: &State) -> bool {
        std::thread::panicking() || st.deadlock
    }

    /// A preemption point before every visible operation: pick which
    /// runnable thread executes next (possibly staying on `me`).
    pub(crate) fn schedule_point(&self, me: usize) {
        let mut st = self.st();
        if Self::doomed(&st) {
            return;
        }
        debug_assert_eq!(st.active, me);
        let options = runnable(&st);
        let next = self.pick(&mut st, options);
        if next != me {
            st.active = next;
            self.cv.notify_all();
            self.wait_until_active(st, me);
        }
    }

    /// Block `me` with a recorded wait reason (lock unavailable, join
    /// target unfinished), hand the schedule to someone else, and
    /// return once `me` is rescheduled.
    fn block(&self, mut st: MutexGuard<'_, State>, me: usize, why: Status) {
        debug_assert!(why.is_blocked());
        st.threads[me].status = why;
        let options = runnable(&st);
        if options.is_empty() {
            self.declare_deadlock(&mut st);
        }
        let next = self.pick(&mut st, options);
        st.active = next;
        self.cv.notify_all();
        // By the time the schedule comes back to `me`, an unlock or a
        // thread exit has already flipped it back to Runnable.
        self.wait_until_active(st, me);
    }

    // ---- atomics -----------------------------------------------------

    pub(crate) fn atomic_new(&self, me: usize, initial: u64) -> usize {
        let mut st = self.st();
        let clock = st.threads[me].clock;
        let at = clock[me];
        st.locations.push(Location {
            // The initial value is a Release store by the creator, so
            // any thread that got the atomic through a happens-before
            // edge (spawn, lock) is guaranteed to observe at least it.
            stores: vec![Store { value: initial, writer: me, at, release: Some(clock) }],
            last_seen: [0; MAX_THREADS],
        });
        st.threads[me].clock[me] += 1;
        st.locations.len() - 1
    }

    pub(crate) fn atomic_load(&self, me: usize, loc: usize, ord: Ordering) -> u64 {
        self.schedule_point(me);
        let mut st = self.st();
        if Self::doomed(&st) {
            return st.locations[loc].stores.last().map(|s| s.value).unwrap_or(0);
        }
        let st = &mut *st;
        let l = &mut st.locations[loc];
        let clock = &mut st.threads[me].clock;
        // Coherence floor: newest store already observed here, or the
        // newest store that happens-before this load — whichever is
        // later. Everything at or after the floor is observable.
        let mut floor = l.last_seen[me];
        for (i, s) in l.stores.iter().enumerate().skip(floor + 1) {
            if covers(clock, s.writer, s.at) {
                floor = i;
            }
        }
        let options: Vec<usize> = (floor..l.stores.len()).collect();
        st.branches += 1;
        assert!(
            st.branches <= self.max_branches,
            "loom: branch limit exceeded — shrink the model or raise LOOM_MAX_BRANCHES"
        );
        let choice = st.path.branch(options);
        l.last_seen[me] = choice;
        let s = &l.stores[choice];
        if is_acquire(ord) {
            if let Some(rc) = &s.release {
                join(clock, rc);
            }
        }
        s.value
    }

    pub(crate) fn atomic_store(&self, me: usize, loc: usize, value: u64, ord: Ordering) {
        self.schedule_point(me);
        let mut st = self.st();
        if Self::doomed(&st) {
            return;
        }
        let st = &mut *st;
        let clock = &mut st.threads[me].clock;
        let release = if is_release(ord) { Some(*clock) } else { None };
        let at = clock[me];
        let l = &mut st.locations[loc];
        l.stores.push(Store { value, writer: me, at, release });
        l.last_seen[me] = l.stores.len() - 1;
        clock[me] += 1;
    }

    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        loc: usize,
        ord: Ordering,
        f: &dyn Fn(u64) -> u64,
    ) -> u64 {
        self.schedule_point(me);
        let mut st = self.st();
        if Self::doomed(&st) {
            return st.locations[loc].stores.last().map(|s| s.value).unwrap_or(0);
        }
        let st = &mut *st;
        let l = &mut st.locations[loc];
        let clock = &mut st.threads[me].clock;
        // An RMW always reads the newest store in modification order.
        let read = l.stores.len() - 1;
        let old = l.stores[read].value;
        if is_acquire(ord) {
            if let Some(rc) = l.stores[read].release.as_ref() {
                join(clock, rc);
            }
        }
        let release = if is_release(ord) {
            Some(*clock)
        } else {
            // A relaxed RMW continues the release sequence of the store
            // it read: a later acquire of this store still synchronizes
            // with the original releaser.
            l.stores[read].release
        };
        let at = clock[me];
        l.stores.push(Store { value: f(old), writer: me, at, release });
        l.last_seen[me] = l.stores.len() - 1;
        clock[me] += 1;
        old
    }

    // ---- locks -------------------------------------------------------

    pub(crate) fn lock_new(&self) -> usize {
        let mut st = self.st();
        st.locks.push(LockState { writer: None, readers: Vec::new(), sync: [0; MAX_THREADS] });
        st.locks.len() - 1
    }

    pub(crate) fn lock_write(&self, me: usize, lid: usize) {
        self.schedule_point(me);
        loop {
            let mut st = self.st();
            if Self::doomed(&st) {
                return;
            }
            let free = {
                let l = &st.locks[lid];
                l.writer.is_none() && l.readers.is_empty()
            };
            if free {
                let st = &mut *st;
                st.locks[lid].writer = Some(me);
                let sync = st.locks[lid].sync;
                join(&mut st.threads[me].clock, &sync);
                return;
            }
            self.block(st, me, Status::BlockedOnLock(lid));
        }
    }

    pub(crate) fn unlock_write(&self, me: usize, lid: usize) {
        self.schedule_point(me);
        let mut st = self.st();
        if Self::doomed(&st) {
            return;
        }
        let st = &mut *st;
        debug_assert_eq!(st.locks[lid].writer, Some(me));
        st.locks[lid].writer = None;
        let clock = &mut st.threads[me].clock;
        join(&mut st.locks[lid].sync, clock);
        clock[me] += 1;
        wake_lock_waiters(st, lid);
    }

    pub(crate) fn lock_read(&self, me: usize, lid: usize) {
        self.schedule_point(me);
        loop {
            let mut st = self.st();
            if Self::doomed(&st) {
                return;
            }
            if st.locks[lid].writer.is_none() {
                let st = &mut *st;
                st.locks[lid].readers.push(me);
                let sync = st.locks[lid].sync;
                join(&mut st.threads[me].clock, &sync);
                return;
            }
            self.block(st, me, Status::BlockedOnLock(lid));
        }
    }

    pub(crate) fn unlock_read(&self, me: usize, lid: usize) {
        self.schedule_point(me);
        let mut st = self.st();
        if Self::doomed(&st) {
            return;
        }
        let st = &mut *st;
        let pos = st.locks[lid]
            .readers
            .iter()
            .position(|&r| r == me)
            .expect("loom: read-unlock by a non-holder");
        st.locks[lid].readers.swap_remove(pos);
        let clock = &mut st.threads[me].clock;
        join(&mut st.locks[lid].sync, clock);
        clock[me] += 1;
        wake_lock_waiters(st, lid);
    }

    // ---- threads -----------------------------------------------------

    pub(crate) fn spawn_thread(&self, me: usize) -> usize {
        self.schedule_point(me);
        let mut st = self.st();
        // Spawning while doomed still registers the thread (the wrapper
        // needs a valid id); it simply never gets scheduled.
        let id = st.threads.len();
        assert!(id < MAX_THREADS, "loom: at most {MAX_THREADS} threads per model");
        let mut clock = st.threads[me].clock;
        clock[id] += 1;
        st.threads.push(ThreadState { status: Status::Runnable, clock });
        st.threads[me].clock[me] += 1;
        id
    }

    /// Park a freshly spawned OS thread until the schedule first picks it.
    pub(crate) fn wait_first_scheduled(&self, me: usize) {
        let st = self.st();
        self.wait_until_active(st, me);
    }

    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.st();
        st.threads[me].status = Status::Finished;
        st.threads[me].clock[me] += 1;
        if st.deadlock {
            // Doomed iteration: just wake everyone so parked threads
            // observe the deadlock flag and unwind too.
            self.cv.notify_all();
            return;
        }
        wake_join_waiters(&mut st, me);
        let options = runnable(&st);
        if options.is_empty() {
            self.declare_deadlock(&mut st);
        }
        let next = self.pick(&mut st, options);
        st.active = next;
        self.cv.notify_all();
    }

    pub(crate) fn join_thread(&self, me: usize, child: usize) {
        self.schedule_point(me);
        loop {
            let mut st = self.st();
            if Self::doomed(&st) {
                return;
            }
            if st.threads[child].status == Status::Finished {
                let st = &mut *st;
                let child_clock = st.threads[child].clock;
                join(&mut st.threads[me].clock, &child_clock);
                return;
            }
            self.block(st, me, Status::BlockedOnJoin(child));
        }
    }

    /// After the model closure returns: every spawned thread must have
    /// been joined (detached threads make exploration meaningless).
    pub(crate) fn drain(&self) {
        let st = self.st();
        for (i, t) in st.threads.iter().enumerate() {
            assert!(
                i == 0 || t.status == Status::Finished,
                "loom: spawned threads must be joined before the model closure returns"
            );
        }
    }
}

// ---- thread-local current (scheduler, thread id) ---------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_current(v: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

pub(crate) fn with<R>(f: impl FnOnce(&Scheduler, usize) -> R) -> R {
    CURRENT.with(|c| {
        let guard = c.borrow();
        let (sched, me) =
            guard.as_ref().expect("loom primitives may only be used inside loom::model");
        f(sched, *me)
    })
}

pub(crate) fn current() -> (Arc<Scheduler>, usize) {
    CURRENT.with(|c| {
        let guard = c.borrow();
        let (sched, me) =
            guard.as_ref().expect("loom primitives may only be used inside loom::model");
        (Arc::clone(sched), *me)
    })
}
