//! Offline vendored stand-in for the `loom` model checker.
//!
//! Re-implements the subset of loom's API this workspace uses: run a
//! closure under [`model`] and every execution uses `loom::sync` /
//! `loom::thread` primitives, which the runtime intercepts to
//! exhaustively enumerate thread interleavings *and* weak-memory
//! outcomes (which store each atomic load observes, vector-clock
//! happens-before tracking for `Acquire`/`Release`). An assertion that
//! can fail under the C11 memory model fails deterministically here.
//!
//! Differences from upstream loom, chosen for a small auditable core:
//!
//! - `SeqCst` is modeled as `AcqRel` (sound: it never invents
//!   behaviors, but it will not rule out non-SC anomalies — don't
//!   assert store-buffering-style SC properties).
//! - No `UnsafeCell` instrumentation: shared mutable state must go
//!   through `loom::sync` types for races to be visible to the model.
//! - Exhaustive DFS without partial-order reduction; keep models to a
//!   handful of threads and a few operations each.
//! - At most [`MAX_THREADS`](rt::MAX_THREADS) logical threads, and all
//!   spawned threads must be joined before the model closure returns.

mod rt;
pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

const DEFAULT_MAX_ITERATIONS: u64 = 4_000_000;
const DEFAULT_MAX_BRANCHES: usize = 50_000;

fn env_limit<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Runs `f` once per distinct execution (schedule × observable-value
/// choice) until the space is exhausted, panicking on the first failing
/// execution. The closure must create all loom primitives inside the
/// call and join every thread it spawns.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let max_iterations: u64 = env_limit("LOOM_MAX_ITERATIONS", DEFAULT_MAX_ITERATIONS);
    let max_branches: usize = env_limit("LOOM_MAX_BRANCHES", DEFAULT_MAX_BRANCHES);
    let sched = Arc::new(rt::Scheduler::new(max_branches));
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: iteration limit exceeded — shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        sched.begin_iteration();
        rt::set_current(Some((Arc::clone(&sched), 0)));
        let result = catch_unwind(AssertUnwindSafe(&f));
        rt::set_current(None);
        match result {
            Ok(()) => sched.drain(),
            Err(payload) => {
                eprintln!("loom: failing execution found after {iterations} iteration(s)");
                resume_unwind(payload);
            }
        }
        if !sched.step_back() {
            break;
        }
    }
}
