//! Litmus tests for the model checker itself: the classic small
//! concurrency shapes whose allowed/forbidden outcomes are known from
//! the C11 memory model. If the checker is sound these pass; if it
//! stops exploring weak behaviors, the `#[should_panic]` cases would
//! start "passing" and fail the suite.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::HashSet;

/// Two concurrent `fetch_add(1)`s always sum: RMW atomicity holds in
/// every interleaving.
#[test]
fn concurrent_increments_never_lose_updates() {
    loom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
}

/// Message passing with Release/Acquire: observing the flag guarantees
/// observing the data. This must hold on every explored path.
#[test]
fn message_passing_release_acquire_holds() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let reader = thread::spawn(move || {
            if f.load(Ordering::Acquire) == 1 {
                assert_eq!(d.load(Ordering::Relaxed), 42, "acquire read must see the data");
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

/// The same shape with a Relaxed flag is broken — the checker must find
/// the execution where the flag is visible but the data is not.
#[test]
#[should_panic(expected = "acquire read must see the data")]
fn message_passing_relaxed_is_caught() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let reader = thread::spawn(move || {
            if f.load(Ordering::Relaxed) == 1 {
                assert_eq!(d.load(Ordering::Relaxed), 42, "acquire read must see the data");
            }
        });
        writer.join().unwrap();
        // Re-raise the reader's own panic so the message is preserved.
        if let Err(payload) = reader.join() {
            std::panic::resume_unwind(payload);
        }
    });
}

/// Exploration covers value nondeterminism: a racing Relaxed load must
/// observe *both* the old and the new value across the run.
#[test]
fn relaxed_load_explores_every_observable_value() {
    let observed: Arc<std::sync::Mutex<HashSet<u64>>> =
        Arc::new(std::sync::Mutex::new(HashSet::new()));
    let sink = Arc::clone(&observed);
    loom::model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let w = Arc::clone(&x);
        let writer = thread::spawn(move || w.store(1, Ordering::Relaxed));
        let r = Arc::clone(&x);
        let reader = thread::spawn(move || r.load(Ordering::Relaxed));
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        sink.lock().unwrap().insert(seen);
    });
    assert_eq!(*observed.lock().unwrap(), HashSet::from([0, 1]));
}

/// Read-read coherence: two Relaxed loads of one location never go
/// backwards in modification order, even with no synchronization.
#[test]
fn same_location_reads_are_monotone() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let w = Arc::clone(&x);
        let writer = thread::spawn(move || {
            w.store(1, Ordering::Relaxed);
            w.store(2, Ordering::Relaxed);
        });
        let r = Arc::clone(&x);
        let reader = thread::spawn(move || {
            let first = r.load(Ordering::Relaxed);
            let second = r.load(Ordering::Relaxed);
            assert!(second >= first, "coherence violated: {first} then {second}");
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

/// Mutexes serialize their critical sections and publish them to the
/// next holder.
#[test]
fn mutex_increments_never_lose_updates() {
    loom::model(|| {
        let total = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    *total.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*total.lock().unwrap(), 2);
    });
}

/// Opposite lock-order acquisition deadlocks on some schedule; the
/// checker must find and report it rather than hang.
#[test]
#[should_panic(expected = "deadlock")]
fn opposite_lock_order_deadlock_is_caught() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a1.lock().unwrap();
            let _gb = b1.lock().unwrap();
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().unwrap();
    });
}

/// A panicking thread surfaces through `join`, like `std::thread`.
#[test]
fn thread_panics_propagate_through_join() {
    loom::model(|| {
        let t = thread::spawn(|| panic!("inner"));
        assert!(t.join().is_err());
    });
}
