//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the serialization surface it uses. Unlike real serde's
//! visitor architecture, this stand-in converts every type to and from a
//! single JSON-like [`Value`] tree — all consumers in this workspace
//! serialize to JSON anyway (via the vendored `serde_json`), so the
//! generality is not missed, and derived impls stay tiny.
//!
//! The companion `serde_derive` crate provides `#[derive(Serialize,
//! Deserialize)]` for plain structs, unit enums, and struct-variant
//! enums, honouring the `#[serde(transparent)]`, `#[serde(default)]`,
//! `#[serde(tag = "...")]` and `#[serde(rename_all = "snake_case")]`
//! attributes used in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization/serialization error: a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: emit in sorted key order.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(entries.into_iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}

macro_rules! impl_deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_deserialize_unsigned!(u8, u16, u32, u64, usize);
impl_deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
                if arr.len() != $len {
                    return Err(Error::msg("tuple length mismatch"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}
