//! The JSON-like data model shared by the vendored `serde` and
//! `serde_json` crates: [`Value`], [`Number`], and the
//! insertion-ordered [`Map`].

/// A JSON number. Integers keep full 64-bit precision; floats are `f64`.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// Builds a number from an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number::U64(n)
    }

    /// Builds a number from a signed integer (non-negative values
    /// normalize to the unsigned representation).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::U64(n as u64)
        } else {
            Number::I64(n)
        }
    }

    /// Builds a number from a float.
    pub fn from_f64(n: f64) -> Self {
        Number::F64(n)
    }

    /// The value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `f64` (always representable, possibly lossily).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(n) => Some(n as f64),
            Number::I64(n) => Some(n as f64),
            Number::F64(f) => Some(f),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::U64(a), Number::I64(b)) | (Number::I64(b), Number::U64(a)) => {
                i64::try_from(*a).is_ok_and(|a| a == *b)
            }
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map. Preserving insertion order
/// keeps emitted JSON deterministic and human-ordered (the real
/// `serde_json` offers the same behaviour behind its `preserve_order`
/// feature).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, replacing (in place) any existing entry
    /// with the same key. Returns the previous value, if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterator over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterator over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterator over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list of values.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` for `Value::String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// `true` for `Value::Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Object-field lookup that tolerates non-objects (returns `None`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Indexing a missing key or a non-object yields `Value::Null`,
    /// matching `serde_json`'s behaviour.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $conv:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$conv() == Some(*other as _)
            }
        }
    )*};
}

impl_value_eq_num! {
    u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64,
    f64 => as_f64
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

macro_rules! impl_value_from_num {
    ($($t:ty => $ctor:ident),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(Number::$ctor(n as _))
            }
        }
    )*};
}

impl_value_from_num! {
    u8 => from_u64, u16 => from_u64, u32 => from_u64, u64 => from_u64, usize => from_u64,
    i8 => from_i64, i16 => from_i64, i32 => from_i64, i64 => from_i64, isize => from_i64,
    f64 => from_f64, f32 => from_f64
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
