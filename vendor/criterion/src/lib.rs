//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Results are printed as mean time per iteration.

use std::time::{Duration, Instant};

/// Identifier for a single benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed window.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / self.iters as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher { iters: self.sample_size, mean: Duration::ZERO };
        f(&mut bencher);
        println!(
            "bench {:<40} {:>12.3?}/iter ({} iters)",
            format!("{}/{}", self.name, id),
            bencher.mean,
            bencher.iters
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.id, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a marker).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _criterion: self }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        let mut f = f;
        group.run(String::from("base"), |b| f(b));
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // one warm-up + five timed iterations
        assert_eq!(calls, 6);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
