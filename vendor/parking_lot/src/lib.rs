//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s, recovering from poisoning transparently (a panic while
//! holding the lock does not wedge other threads).

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A readers-writer lock whose accessors never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_counts_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 800);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
